package source

import (
	"context"
	"fmt"
	"sync"
	"time"

	"yat/internal/trace"
	"yat/internal/tree"
)

// BreakerOptions tunes WithBreaker. The zero value opens after 5
// consecutive failures and probes again after a 30s cooldown on the
// real clock.
type BreakerOptions struct {
	// Threshold is the number of consecutive failures that opens the
	// breaker (<= 0 means 5).
	Threshold int
	// Cooldown is how long the breaker stays open before letting one
	// half-open probe through (<= 0 means 30s).
	Cooldown time.Duration
	// Clock injects time for tests; nil means the wall clock.
	Clock Clock
}

// ErrBreakerOpen is returned for fetches rejected while the breaker is
// open (or while a half-open probe is already in flight).
type ErrBreakerOpen struct {
	// Source is the protected source's name.
	Source string
	// Until is when the breaker next admits a probe (zero when the
	// rejection was a concurrent half-open probe).
	Until time.Time
}

func (e *ErrBreakerOpen) Error() string {
	return fmt.Sprintf("source %s: circuit breaker open", e.Source)
}

// breaker state machine values.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// breaker trips after consecutive failures and recovers through
// half-open probing: after the cooldown exactly one fetch is let
// through; its success closes the breaker, its failure reopens it for
// another cooldown.
type breaker struct {
	inner Source
	opts  BreakerOptions

	mu          sync.Mutex
	state       int
	consecFails int
	openedAt    time.Time
	probing     bool

	opens    counter
	rejected counter
}

// WithBreaker decorates a source with a circuit breaker. Place it
// outside WithRetry so it counts final (post-retry) outcomes, and
// inside WithCache so an open breaker degrades to stale data instead
// of an error.
func WithBreaker(s Source, opts BreakerOptions) Source {
	if opts.Threshold <= 0 {
		opts.Threshold = 5
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 30 * time.Second
	}
	if opts.Clock == nil {
		opts.Clock = RealClock
	}
	return &breaker{inner: s, opts: opts}
}

func (b *breaker) Name() string { return b.inner.Name() }

func (b *breaker) Fetch(ctx context.Context) (*tree.Store, error) {
	if err := b.admit(); err != nil {
		b.rejected.Add(1)
		return nil, err
	}
	store, err := b.inner.Fetch(ctx)
	b.record(ctx, err)
	return store, err
}

// admit decides whether a fetch may proceed, transitioning open →
// half-open when the cooldown has elapsed.
func (b *breaker) admit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		until := b.openedAt.Add(b.opts.Cooldown)
		if b.opts.Clock.Now().Before(until) {
			return &ErrBreakerOpen{Source: b.inner.Name(), Until: until}
		}
		b.state = stateHalfOpen
		b.probing = false
		fallthrough
	default: // half-open: admit exactly one probe at a time
		if b.probing {
			return &ErrBreakerOpen{Source: b.inner.Name()}
		}
		b.probing = true
		return nil
	}
}

// record feeds one fetch outcome into the state machine.
func (b *breaker) record(ctx context.Context, err error) {
	b.mu.Lock()
	opened := false
	if err == nil {
		b.state = stateClosed
		b.consecFails = 0
	} else {
		b.consecFails++
		if b.state == stateHalfOpen || b.consecFails >= b.opts.Threshold {
			if b.state != stateOpen {
				b.state = stateOpen
				b.opens.Add(1)
				opened = true
			}
			b.openedAt = b.opts.Clock.Now()
		}
	}
	b.probing = false
	b.mu.Unlock()
	if opened {
		emit(ctx, trace.Event{Kind: trace.KindBreakerOpen, Phase: trace.PhaseSource,
			Detail: b.inner.Name(), Count: b.consecFailsSnapshot()})
	}
}

func (b *breaker) consecFailsSnapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.consecFails
}

// SourceStats implements Statser.
func (b *breaker) SourceStats() Stats {
	s := StatsOf(b.inner)
	b.mu.Lock()
	switch b.state {
	case stateOpen:
		s.BreakerState = "open"
	case stateHalfOpen:
		s.BreakerState = "half-open"
	default:
		s.BreakerState = "closed"
	}
	b.mu.Unlock()
	s.BreakerOpens += b.opens.Load()
	s.Rejections += b.rejected.Load()
	return s
}
