package source

import (
	"context"
	"sync"
	"time"

	"yat/internal/trace"
	"yat/internal/tree"
)

// CacheOptions tunes WithCache. The zero value keeps snapshots fresh
// for one minute on the real clock.
type CacheOptions struct {
	// TTL is the freshness window: a snapshot younger than TTL is
	// served directly; an older one is served stale while a background
	// refresh runs (<= 0 means 1 minute).
	TTL time.Duration
	// Clock injects time for tests; nil means the wall clock.
	Clock Clock
}

// Cached is the stale-while-revalidate decorator: after the first
// successful fetch it always answers immediately from the last good
// snapshot. A stale snapshot triggers one background refresh; a
// failing refresh keeps the stale data serving (degraded but
// available), which is the behaviour that keeps a mediator answering
// while a wrapper is down.
type Cached struct {
	inner Source
	opts  CacheOptions

	// fillMu serializes the synchronous cold fill so concurrent first
	// fetches hit the inner source once.
	fillMu sync.Mutex

	mu         sync.Mutex
	snap       *tree.Store
	snapAt     time.Time
	refreshing bool
	lastErr    error
	// epoch counts Invalidate calls. Every commit path snapshots it
	// before fetching the inner source and commits only if it is
	// unchanged, so a fetch that started before an Invalidate cannot
	// resurrect the dropped snapshot by committing after it.
	epoch uint64

	// wg tracks background refreshes so tests (and the soak job's leak
	// check) can wait for quiescence.
	wg sync.WaitGroup

	staleServed counter
	refreshErrs counter
}

// WithCache decorates a source with a stale-while-revalidate snapshot
// cache. It is the outermost decorator of the conventional chain.
func WithCache(s Source, opts CacheOptions) *Cached {
	if opts.TTL <= 0 {
		opts.TTL = time.Minute
	}
	if opts.Clock == nil {
		opts.Clock = RealClock
	}
	return &Cached{inner: s, opts: opts}
}

func (c *Cached) Name() string { return c.inner.Name() }

func (c *Cached) Fetch(ctx context.Context) (*tree.Store, error) {
	c.mu.Lock()
	if c.snap != nil {
		age := c.opts.Clock.Now().Sub(c.snapAt)
		snap := c.snap
		if age < c.opts.TTL {
			c.mu.Unlock()
			return snap, nil
		}
		// Stale: kick one background refresh and serve the last good
		// snapshot immediately. The refresh is detached from the
		// caller's cancellation (it outlives this fetch) but keeps its
		// values, so trace events still reach the caller's sink.
		if !c.refreshing {
			c.refreshing = true
			c.wg.Add(1)
			go c.refresh(context.WithoutCancel(ctx), c.epoch)
		}
		c.staleServed.Add(1)
		c.mu.Unlock()
		emit(ctx, trace.Event{Kind: trace.KindStaleServed, Phase: trace.PhaseSource,
			Detail: c.inner.Name(), Count: 1, Duration: age})
		return snap, nil
	}
	c.mu.Unlock()

	// Cold: fill synchronously, one filler at a time.
	c.fillMu.Lock()
	defer c.fillMu.Unlock()
	c.mu.Lock()
	if c.snap != nil { // another filler won the race
		snap := c.snap
		c.mu.Unlock()
		return snap, nil
	}
	epoch := c.epoch
	c.mu.Unlock()
	store, err := c.inner.Fetch(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.lastErr = err
		return nil, err
	}
	if c.epoch == epoch {
		c.commit(store)
	}
	return store, nil
}

// refresh runs one background revalidation. epoch is the invalidation
// epoch observed when the refresh was kicked off; an Invalidate in the
// meantime discards the result instead of resurrecting the snapshot.
func (c *Cached) refresh(ctx context.Context, epoch uint64) {
	defer c.wg.Done()
	store, err := c.inner.Fetch(ctx)
	c.mu.Lock()
	c.refreshing = false
	switch {
	case err != nil:
		c.refreshErrs.Add(1)
		c.lastErr = err
	case c.epoch == epoch:
		c.commit(store)
	}
	c.mu.Unlock()
}

// commit installs a new good snapshot; callers hold c.mu.
func (c *Cached) commit(store *tree.Store) {
	c.snap = store
	c.snapAt = c.opts.Clock.Now()
	c.lastErr = nil
}

// Refresh synchronously re-fetches the inner source and installs the
// result, returning the fetch error if it fails (the old snapshot
// keeps serving then). It is the hook behind the mediator's
// RefreshSource.
func (c *Cached) Refresh(ctx context.Context) error {
	c.mu.Lock()
	epoch := c.epoch
	c.mu.Unlock()
	store, err := c.inner.Fetch(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.refreshErrs.Add(1)
		c.lastErr = err
		return err
	}
	if c.epoch == epoch {
		c.commit(store)
	}
	return nil
}

// Invalidate drops the snapshot; the next fetch fills cold. Any
// refresh already in flight — background or synchronous — commits
// against the old epoch and is discarded, so invalidated data cannot
// come back without a fresh fetch.
func (c *Cached) Invalidate() {
	c.mu.Lock()
	c.snap = nil
	c.snapAt = time.Time{}
	c.epoch++
	c.mu.Unlock()
}

// Wait blocks until no background refresh is running — the quiescence
// point for tests and leak checks.
func (c *Cached) Wait() { c.wg.Wait() }

// SourceStats implements Statser.
func (c *Cached) SourceStats() Stats {
	s := StatsOf(c.inner)
	s.StaleServed += c.staleServed.Load()
	c.mu.Lock()
	if c.snap != nil {
		s.StaleAge = c.opts.Clock.Now().Sub(c.snapAt)
	}
	if c.lastErr != nil && s.LastErr == "" {
		s.LastErr = c.lastErr.Error()
	}
	c.mu.Unlock()
	return s
}
