package source

import (
	"context"
	"sync"
	"testing"
	"time"

	"yat/internal/tree"
)

// gateSource is a Source whose fetches can be held at a gate, so tests
// can interleave an Invalidate with an in-flight fetch at an exact
// point. The store is re-read after the gate opens, so whatever the
// test installed last is what the blocked fetch returns.
type gateSource struct {
	name string

	mu      sync.Mutex
	store   *tree.Store
	gate    chan struct{} // when non-nil, Fetch blocks until closed
	started chan struct{} // when non-nil, Fetch signals entry (buffered)
}

func (g *gateSource) Name() string { return g.name }

func (g *gateSource) set(store *tree.Store, gate, started chan struct{}) {
	g.mu.Lock()
	g.store, g.gate, g.started = store, gate, started
	g.mu.Unlock()
}

func (g *gateSource) Fetch(ctx context.Context) (*tree.Store, error) {
	g.mu.Lock()
	gate, started := g.gate, g.started
	g.mu.Unlock()
	if started != nil {
		started <- struct{}{}
	}
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.store, nil
}

func labeledStore(label string) *tree.Store {
	s := tree.NewStore()
	s.Put(tree.PlainName("x"), tree.Sym(label))
	return s
}

func storeLabel(t *testing.T, s *tree.Store) string {
	t.Helper()
	n, ok := s.Get(tree.PlainName("x"))
	if !ok {
		t.Fatal("store has no x entry")
	}
	return n.Label.Display()
}

// Regression: a background stale-refresh that was in flight when
// Invalidate ran must not resurrect its snapshot by committing after
// the invalidation — the next fetch has to fill cold from the inner
// source.
func TestCachedInvalidateDiscardsBackgroundRefresh(t *testing.T) {
	clock := NewFakeClock()
	inner := &gateSource{name: "s", store: labeledStore("A")}
	c := WithCache(inner, CacheOptions{TTL: time.Minute, Clock: clock})
	ctx := context.Background()

	got, err := c.Fetch(ctx) // cold fill A
	if err != nil || storeLabel(t, got) != "A" {
		t.Fatalf("cold fill = %v, %v", got, err)
	}
	clock.Advance(2 * time.Minute) // stale now

	gate := make(chan struct{})
	inner.set(labeledStore("B"), gate, nil)
	got, err = c.Fetch(ctx) // serves stale A, kicks the background refresh
	if err != nil || storeLabel(t, got) != "A" {
		t.Fatalf("stale serve = %v, %v; want the old snapshot", got, err)
	}

	c.Invalidate() // while the refresh is parked at the gate
	close(gate)    // refresh completes with B — against the old epoch
	c.Wait()

	inner.set(labeledStore("C"), nil, nil)
	got, err = c.Fetch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l := storeLabel(t, got); l != "C" {
		t.Fatalf("post-invalidate fetch = %s, want a cold fill of C (B resurrected)", l)
	}
}

// The same guard for the synchronous Refresh path (the hook behind the
// mediator's RefreshSource): a Refresh that began before Invalidate
// must not install its result afterwards.
func TestCachedInvalidateDiscardsSyncRefresh(t *testing.T) {
	clock := NewFakeClock()
	inner := &gateSource{name: "s", store: labeledStore("A")}
	c := WithCache(inner, CacheOptions{TTL: time.Minute, Clock: clock})
	ctx := context.Background()

	if _, err := c.Fetch(ctx); err != nil { // cold fill A
		t.Fatal(err)
	}

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	inner.set(labeledStore("B"), gate, started)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Refresh(ctx) }()
	<-started // Refresh has snapshotted the epoch and entered the fetch

	c.Invalidate()
	close(gate)
	if err := <-errCh; err != nil {
		t.Fatalf("refresh: %v", err)
	}

	inner.set(labeledStore("C"), nil, nil)
	got, err := c.Fetch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l := storeLabel(t, got); l != "C" {
		t.Fatalf("post-invalidate fetch = %s, want a cold fill of C (B resurrected)", l)
	}
}

// A cold fill racing Invalidate the same way: the filled store is
// still returned to its caller but not committed, so the snapshot
// cannot outlive the invalidation either.
func TestCachedInvalidateDiscardsColdFill(t *testing.T) {
	clock := NewFakeClock()
	inner := &gateSource{name: "s", store: labeledStore("B")}
	c := WithCache(inner, CacheOptions{TTL: time.Minute, Clock: clock})
	ctx := context.Background()

	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	inner.set(labeledStore("B"), gate, started)
	type result struct {
		store *tree.Store
		err   error
	}
	resCh := make(chan result, 1)
	go func() {
		s, err := c.Fetch(ctx)
		resCh <- result{s, err}
	}()
	<-started
	c.Invalidate()
	close(gate)
	res := <-resCh
	if res.err != nil || storeLabel(t, res.store) != "B" {
		t.Fatalf("cold fill = %v, %v; the filler itself still gets its fetch", res.store, res.err)
	}

	inner.set(labeledStore("C"), nil, nil)
	got, err := c.Fetch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if l := storeLabel(t, got); l != "C" {
		t.Fatalf("fetch after invalidated cold fill = %s, want C", l)
	}
}
