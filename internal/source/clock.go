package source

import (
	"sync"
	"time"
)

// Clock abstracts the two time operations the decorators need, so
// backoff, cooldown and staleness behaviour is testable without real
// sleeps.
type Clock interface {
	Now() time.Time
	// After behaves like time.After: it returns a channel that fires
	// once the duration has elapsed.
	After(d time.Duration) <-chan time.Time
}

// realClock is the wall clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock is the wall-clock Clock every decorator defaults to.
var RealClock Clock = realClock{}

// FakeClock is a deterministic Clock for tests. Now starts at a fixed
// epoch and only moves when Advance is called — or when After is
// called: a fake After never blocks; it records the requested
// duration, advances the clock by it, and returns an already-fired
// channel. That makes retry/backoff/cooldown tests fully synchronous:
// the schedule a decorator *would* have slept is read back with
// Sleeps, and elapsed virtual time with Now.
type FakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFakeClock returns a fake clock at a fixed epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current virtual time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the virtual clock forward.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// After records the requested duration, advances the clock by it, and
// returns a channel that has already fired.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	now := c.now
	c.mu.Unlock()
	ch := make(chan time.Time, 1)
	ch <- now
	return ch
}

// Sleeps returns every duration requested through After, in order —
// the virtual sleep schedule of the code under test.
func (c *FakeClock) Sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}
