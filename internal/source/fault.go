package source

import (
	"context"
	"sync"
	"time"

	"yat/internal/tree"
)

// Step is one scripted fetch outcome of a Fault source.
type Step struct {
	// Fail, when non-nil, is the error this fetch returns.
	Fail error
	// Latency is waited (on the fault's clock, cancellable by the
	// fetch context) before the outcome is produced.
	Latency time.Duration
}

// Fault is a scripted source for tests and benchmarks: it serves a
// fixed store through a schedule of error/latency steps, consumed one
// per fetch. Past the end of the script every fetch is healthy —
// unless Loop is set, which replays the script forever. SetErr
// overrides the script dynamically, which is how flap tests toggle a
// source between failing and healthy under load.
type Fault struct {
	name  string
	store *tree.Store
	steps []Step
	loop  bool
	clock Clock

	mu     sync.Mutex
	calls  int64
	forced error
}

// NewFault returns a scripted source over the store.
func NewFault(name string, store *tree.Store, steps ...Step) *Fault {
	return &Fault{name: name, store: store, steps: steps, clock: RealClock}
}

// Loop makes the script replay forever instead of running out.
func (f *Fault) Loop(on bool) *Fault {
	f.loop = on
	return f
}

// WithClock injects the clock the latency steps wait on.
func (f *Fault) WithClock(c Clock) *Fault {
	f.clock = c
	return f
}

// SetErr forces every subsequent fetch to fail with err until cleared
// with SetErr(nil). The override takes precedence over the script.
func (f *Fault) SetErr(err error) {
	f.mu.Lock()
	f.forced = err
	f.mu.Unlock()
}

// SetStore swaps the store served by subsequent fetches — how refresh
// tests and benchmarks change a source's contents between fetches.
func (f *Fault) SetStore(s *tree.Store) {
	f.mu.Lock()
	f.store = s
	f.mu.Unlock()
}

// Calls reports how many fetches the source has served.
func (f *Fault) Calls() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *Fault) Name() string { return f.name }

func (f *Fault) Fetch(ctx context.Context) (*tree.Store, error) {
	f.mu.Lock()
	var step Step
	switch {
	case f.forced != nil:
		step = Step{Fail: f.forced}
	case int(f.calls) < len(f.steps):
		step = f.steps[f.calls]
	case f.loop && len(f.steps) > 0:
		step = f.steps[f.calls%int64(len(f.steps))]
	}
	f.calls++
	store := f.store
	f.mu.Unlock()

	if step.Latency > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-f.clock.After(step.Latency):
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if step.Fail != nil {
		return nil, step.Fail
	}
	return store, nil
}
