package source

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"yat/internal/trace"
	"yat/internal/tree"
)

// RetryOptions tunes WithRetry. The zero value means 3 attempts, a
// 50ms base delay doubling up to 2s, 20% jitter, the real clock and a
// deterministic per-decorator jitter source.
type RetryOptions struct {
	// MaxAttempts is the total number of fetch attempts (first try
	// included). <= 0 means 3; 1 disables retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 50ms);
	// each further retry multiplies it by Multiplier (default 2) up to
	// MaxDelay (default 2s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// Jitter is the fraction of the computed delay randomized
	// symmetrically around it (0.2 → ±20%). Negative disables jitter;
	// 0 means the 0.2 default.
	Jitter float64
	// Clock injects time for tests; nil means the wall clock.
	Clock Clock
	// Rand injects the jitter source as a func returning [0,1); nil
	// means a fixed-seed deterministic generator private to the
	// decorator.
	Rand func() float64
}

// retrier retries failed fetches with exponential backoff.
type retrier struct {
	inner Source
	opts  RetryOptions

	randMu sync.Mutex
	rand   func() float64

	attempts counter
	failures counter
	retries  counter

	errMu   sync.Mutex
	lastErr error
}

// WithRetry decorates a source with bounded retries and exponential
// backoff plus jitter. A retry is not attempted when the context is
// already cancelled or when the failure is a breaker rejection
// (retrying a deliberately open breaker only burns its cooldown).
func WithRetry(s Source, opts RetryOptions) Source {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 50 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 2 * time.Second
	}
	if opts.Multiplier <= 1 {
		opts.Multiplier = 2
	}
	switch {
	case opts.Jitter < 0:
		opts.Jitter = 0
	case opts.Jitter == 0:
		opts.Jitter = 0.2
	}
	if opts.Clock == nil {
		opts.Clock = RealClock
	}
	r := &retrier{inner: s, opts: opts, rand: opts.Rand}
	if r.rand == nil {
		r.rand = newXorShift(0x5EED5EED5EED5EED)
	}
	return r
}

// newXorShift is a small deterministic [0,1) generator (xorshift64*),
// independent of math/rand so jitter schedules are stable across Go
// versions. The caller serializes access.
func newXorShift(seed uint64) func() float64 {
	state := seed
	return func() float64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return float64((state*0x2545F4914F6CDD1D)>>11) / float64(1<<53)
	}
}

func (r *retrier) Name() string { return r.inner.Name() }

// Fetch tries the inner source up to MaxAttempts times. Between
// attempts it emits a source-retry trace event and waits out the
// backoff on the injected clock, aborting early if the context is
// cancelled.
func (r *retrier) Fetch(ctx context.Context) (*tree.Store, error) {
	var lastErr error
	for attempt := 1; attempt <= r.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			r.retries.Add(1)
			emit(ctx, trace.Event{Kind: trace.KindSourceRetry, Phase: trace.PhaseSource,
				Detail: r.inner.Name(), Count: attempt})
			if err := r.sleep(ctx, r.backoff(attempt-1)); err != nil {
				return nil, fmt.Errorf("source %s: retry wait: %w", r.inner.Name(), err)
			}
		}
		r.attempts.Add(1)
		store, err := r.inner.Fetch(ctx)
		if err == nil {
			r.setLastErr(nil)
			return store, nil
		}
		r.failures.Add(1)
		r.setLastErr(err)
		lastErr = err
		// A cancelled context or an open breaker will not heal within
		// the backoff window; stop early.
		var open *ErrBreakerOpen
		if ctx.Err() != nil || errors.As(err, &open) {
			break
		}
	}
	return nil, fmt.Errorf("source %s: giving up after %d attempt(s): %w",
		r.inner.Name(), r.attempts.Load(), lastErr)
}

// backoff computes the delay before the retry-th re-attempt (1-based):
// Base·Multiplier^(retry-1), capped at MaxDelay, jittered ±Jitter.
func (r *retrier) backoff(retry int) time.Duration {
	d := float64(r.opts.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= r.opts.Multiplier
		if d >= float64(r.opts.MaxDelay) {
			d = float64(r.opts.MaxDelay)
			break
		}
	}
	if d > float64(r.opts.MaxDelay) {
		d = float64(r.opts.MaxDelay)
	}
	if j := r.opts.Jitter; j > 0 {
		r.randMu.Lock()
		u := r.rand()
		r.randMu.Unlock()
		d *= 1 + j*(2*u-1)
	}
	return time.Duration(d)
}

// sleep waits d on the clock, or returns the context's error if it is
// cancelled first. The explicit pre- and post-checks keep behaviour
// deterministic with a FakeClock, whose After channel is always ready.
func (r *retrier) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-r.opts.Clock.After(d):
		return ctx.Err()
	}
}

func (r *retrier) setLastErr(err error) {
	r.errMu.Lock()
	r.lastErr = err
	r.errMu.Unlock()
}

// SourceStats implements Statser: the inner snapshot plus the retry
// counters and the most recent error.
func (r *retrier) SourceStats() Stats {
	s := StatsOf(r.inner)
	s.Attempts += r.attempts.Load()
	s.Failures += r.failures.Load()
	s.Retries += r.retries.Load()
	r.errMu.Lock()
	if r.lastErr != nil {
		s.LastErr = r.lastErr.Error()
	}
	r.errMu.Unlock()
	return s
}
