// Package source is the fault-tolerant source layer of the mediator
// architecture (Figure 6, §5): a production mediator talks to live
// wrappers that are slow, flaky, or down, so the mediator consumes its
// inputs through the Source interface — a named producer of tree
// snapshots — instead of a pre-materialized store.
//
// Robustness is composed from small decorators, each wrapping an inner
// Source:
//
//	WithTimeout  bounds one fetch with a per-call deadline
//	WithRetry    retries with exponential backoff and jitter
//	WithBreaker  trips a circuit breaker after consecutive failures,
//	             with half-open probing after a cooldown
//	WithCache    serves the last good snapshot stale-while-revalidate
//
// The conventional chain, outermost first, is
//
//	WithCache(WithBreaker(WithRetry(WithTimeout(src, d), rOpts), bOpts), cOpts)
//
// so the cache absorbs breaker rejections by serving stale data, the
// breaker counts retried (final) outcomes, and each retry attempt gets
// its own timeout. Every decorator takes an injectable Clock (and the
// retry decorator an injectable jitter source), so timing behaviour is
// testable without real sleeps; see FakeClock.
//
// Decorators report what happened through two channels: counters,
// exposed as a Stats snapshot via the Statser interface and merged
// along the chain, and trace events (source-retry, breaker-open,
// stale-served) emitted to a trace.Sink carried by the fetch context
// (WithSink) so the mediator's EXPLAIN profile sees them.
package source

import (
	"context"
	"sync/atomic"
	"time"

	"yat/internal/trace"
	"yat/internal/tree"
)

// Source produces one wrapper's snapshot of YAT trees. Fetch may be
// called concurrently and must honor ctx cancellation; the returned
// store is treated as immutable by callers.
type Source interface {
	// Name identifies the source stably across fetches (stats, trace
	// events and invalidation are keyed by it).
	Name() string
	// Fetch produces the source's current snapshot.
	Fetch(ctx context.Context) (*tree.Store, error)
}

// Stats is a point-in-time snapshot of one source chain's counters.
// Each decorator fills in its own fields and passes the rest through,
// so the snapshot of the outermost decorator describes the whole
// chain.
type Stats struct {
	// Name is the source's stable name.
	Name string
	// Attempts counts fetches attempted against the decorated source
	// (including retries); Failures counts the attempts that errored.
	Attempts, Failures int64
	// Retries counts re-attempts after a failed fetch.
	Retries int64
	// Timeouts counts attempts that exceeded the per-fetch deadline.
	Timeouts int64
	// BreakerOpens counts closed/half-open → open transitions;
	// BreakerState is "" without a breaker, else "closed", "open" or
	// "half-open". Rejections counts fetches refused while open.
	BreakerOpens int64
	BreakerState string
	Rejections   int64
	// StaleServed counts fetches answered with an expired snapshot
	// while a refresh ran (or failed); StaleAge is the current
	// snapshot's age, zero without a cache or snapshot.
	StaleServed int64
	StaleAge    time.Duration
	// LastErr is the most recent fetch error observed by the retry
	// decorator ("" after a success).
	LastErr string
}

// Statser is implemented by sources that can report Stats. All
// decorators of this package implement it, merging the inner source's
// snapshot when it is a Statser too.
type Statser interface {
	SourceStats() Stats
}

// StatsOf snapshots a source's counters: its SourceStats when it is a
// Statser, else a zero Stats carrying only the name.
func StatsOf(s Source) Stats {
	if st, ok := s.(Statser); ok {
		return st.SourceStats()
	}
	return Stats{Name: s.Name()}
}

// static is a Source over a fixed in-memory store — the degenerate
// wrapper, and the adapter for the pre-materialized inputs the
// mediator historically consumed.
type static struct {
	name  string
	store *tree.Store
}

// Static wraps a fixed store as an always-healthy source.
func Static(name string, store *tree.Store) Source {
	return &static{name: name, store: store}
}

func (s *static) Name() string { return s.name }

func (s *static) Fetch(ctx context.Context) (*tree.Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return s.store, nil
}

// funcSource adapts a closure to the Source interface.
type funcSource struct {
	name string
	fn   func(context.Context) (*tree.Store, error)
}

// FromFunc wraps a fetch closure as a source — the hook for real
// wrapper backends (HTTP, SQL) without a dependency on them here.
func FromFunc(name string, fn func(context.Context) (*tree.Store, error)) Source {
	return &funcSource{name: name, fn: fn}
}

func (s *funcSource) Name() string { return s.name }

func (s *funcSource) Fetch(ctx context.Context) (*tree.Store, error) { return s.fn(ctx) }

// sinkKey carries a trace.Sink through fetch contexts.
type sinkKey struct{}

// WithSink returns a context carrying the sink; decorators emit their
// source-retry / breaker-open / stale-served events to it. A nil sink
// returns ctx unchanged.
func WithSink(ctx context.Context, s trace.Sink) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, sinkKey{}, s)
}

// emit sends an event to the context's sink, if any.
func emit(ctx context.Context, e trace.Event) {
	if s, _ := ctx.Value(sinkKey{}).(trace.Sink); s != nil {
		s.Emit(e)
	}
}

// counter is a tiny alias to keep decorator structs tidy.
type counter = atomic.Int64
