package source

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"yat/internal/trace"
	"yat/internal/tree"
)

func testStore(t testing.TB, names ...string) *tree.Store {
	t.Helper()
	s := tree.NewStore()
	for _, n := range names {
		s.Put(tree.PlainName(n), tree.Sym("item", tree.Str(n)))
	}
	return s
}

func TestStaticSource(t *testing.T) {
	st := testStore(t, "a", "b")
	s := Static("mem", st)
	if s.Name() != "mem" {
		t.Fatalf("name = %q", s.Name())
	}
	got, err := s.Fetch(context.Background())
	if err != nil || got.Len() != 2 {
		t.Fatalf("fetch = %v, %v", got, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Fetch(ctx); err == nil {
		t.Fatal("cancelled fetch should fail")
	}
}

// The retry schedule, pinned on the fake clock: failures back off
// exponentially from BaseDelay, double each retry, cap at MaxDelay —
// and no real time passes.
func TestRetryBackoffSchedule(t *testing.T) {
	clock := NewFakeClock()
	fault := NewFault("flaky", testStore(t, "a"),
		Step{Fail: errors.New("boom 1")},
		Step{Fail: errors.New("boom 2")},
		Step{Fail: errors.New("boom 3")},
	)
	s := WithRetry(fault, RetryOptions{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Jitter:      -1, // exact schedule
		Clock:       clock,
	})
	start := time.Now()
	store, err := s.Fetch(context.Background())
	if err != nil || store == nil {
		t.Fatalf("fetch = %v, %v", store, err)
	}
	if real := time.Since(start); real > 2*time.Second {
		t.Fatalf("retry slept in real time (%v); the fake clock should absorb the backoff", real)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 250 * time.Millisecond}
	got := clock.Sleeps()
	if len(got) != len(want) {
		t.Fatalf("sleeps = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sleep[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	stats := StatsOf(s)
	if stats.Attempts != 4 || stats.Failures != 3 || stats.Retries != 3 {
		t.Errorf("stats = %+v, want attempts=4 failures=3 retries=3", stats)
	}
	if stats.LastErr != "" {
		t.Errorf("LastErr = %q after a success, want empty", stats.LastErr)
	}
}

// Jitter spreads the backoff symmetrically around the exact schedule,
// bounded by the configured fraction, and is deterministic for a given
// injected source.
func TestRetryJitterBounded(t *testing.T) {
	clock := NewFakeClock()
	seq := []float64{0, 0.5, 1 - 1e-9} // min, center, max jitter draws
	i := 0
	fault := NewFault("flaky", testStore(t, "a"),
		Step{Fail: errors.New("e")}, Step{Fail: errors.New("e")}, Step{Fail: errors.New("e")})
	s := WithRetry(fault, RetryOptions{
		MaxAttempts: 4,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    time.Hour,
		Jitter:      0.5,
		Clock:       clock,
		Rand:        func() float64 { v := seq[i]; i++; return v },
	})
	if _, err := s.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	sleeps := clock.Sleeps()
	if len(sleeps) != 3 {
		t.Fatalf("sleeps = %v", sleeps)
	}
	// draw 0 → ×0.5 of 100ms; draw 0.5 → ×1.0 of 200ms; draw ~1 → ×~1.5 of 400ms.
	if sleeps[0] != 50*time.Millisecond {
		t.Errorf("min-jitter sleep = %v, want 50ms", sleeps[0])
	}
	if sleeps[1] != 200*time.Millisecond {
		t.Errorf("center-jitter sleep = %v, want 200ms", sleeps[1])
	}
	if sleeps[2] < 400*time.Millisecond || sleeps[2] > 600*time.Millisecond {
		t.Errorf("max-jitter sleep = %v, want in (400ms, 600ms]", sleeps[2])
	}
}

func TestRetryGivesUpAndReportsLastErr(t *testing.T) {
	clock := NewFakeClock()
	fault := NewFault("down", testStore(t), Step{Fail: errors.New("boom")}).Loop(true)
	s := WithRetry(fault, RetryOptions{MaxAttempts: 3, Clock: clock, Jitter: -1})
	_, err := s.Fetch(context.Background())
	if err == nil {
		t.Fatal("want error")
	}
	if fault.Calls() != 3 {
		t.Errorf("calls = %d, want 3", fault.Calls())
	}
	if st := StatsOf(s); st.LastErr == "" || st.Failures != 3 {
		t.Errorf("stats = %+v, want failures=3 and a LastErr", st)
	}
}

func TestRetryStopsOnCancelledContext(t *testing.T) {
	clock := NewFakeClock()
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	s := WithRetry(FromFunc("cancelly", func(context.Context) (*tree.Store, error) {
		calls++
		cancel()
		return nil, errors.New("boom")
	}), RetryOptions{MaxAttempts: 5, Clock: clock})
	if _, err := s.Fetch(ctx); err == nil {
		t.Fatal("want error")
	}
	if calls != 1 {
		t.Errorf("fetch ran %d times after cancellation, want 1", calls)
	}
}

func TestRetryEmitsRetryEvents(t *testing.T) {
	clock := NewFakeClock()
	rec := &trace.Recorder{}
	fault := NewFault("flaky", testStore(t, "a"), Step{Fail: errors.New("boom")})
	s := WithRetry(fault, RetryOptions{MaxAttempts: 3, Clock: clock})
	if _, err := s.Fetch(WithSink(context.Background(), rec)); err != nil {
		t.Fatal(err)
	}
	retries := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindSourceRetry {
			retries++
			if e.Detail != "flaky" || e.Phase != trace.PhaseSource {
				t.Errorf("bad retry event %+v", e)
			}
		}
	}
	if retries != 1 {
		t.Errorf("retry events = %d, want 1", retries)
	}
}

// The breaker's full life cycle on the fake clock: closed → open at
// the threshold (rejecting while hot), half-open after the cooldown,
// reopened by a failed probe, closed by a successful one.
func TestBreakerLifeCycle(t *testing.T) {
	clock := NewFakeClock()
	fault := NewFault("db", testStore(t, "a")).WithClock(clock)
	boom := errors.New("boom")
	s := WithBreaker(fault, BreakerOptions{Threshold: 2, Cooldown: 10 * time.Second, Clock: clock})
	ctx := context.Background()

	fault.SetErr(boom)
	for i := 0; i < 2; i++ {
		if _, err := s.Fetch(ctx); !errors.Is(err, boom) {
			t.Fatalf("failure %d: %v", i, err)
		}
	}
	if st := StatsOf(s); st.BreakerState != "open" || st.BreakerOpens != 1 {
		t.Fatalf("after threshold: %+v", st)
	}
	// While open and inside the cooldown, fetches are rejected without
	// touching the source.
	before := fault.Calls()
	var open *ErrBreakerOpen
	if _, err := s.Fetch(ctx); !errors.As(err, &open) {
		t.Fatalf("want ErrBreakerOpen, got %v", err)
	}
	if open.Source != "db" || fault.Calls() != before {
		t.Fatalf("rejection touched the source (calls %d → %d)", before, fault.Calls())
	}

	// Cooldown elapses; the next fetch is the half-open probe. It
	// fails, so the breaker reopens for another full cooldown.
	clock.Advance(10 * time.Second)
	if _, err := s.Fetch(ctx); !errors.Is(err, boom) {
		t.Fatalf("probe: %v", err)
	}
	if st := StatsOf(s); st.BreakerState != "open" || st.BreakerOpens != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}

	// Source heals; after another cooldown the probe succeeds and the
	// breaker closes.
	fault.SetErr(nil)
	clock.Advance(10 * time.Second)
	if _, err := s.Fetch(ctx); err != nil {
		t.Fatalf("healed probe: %v", err)
	}
	if st := StatsOf(s); st.BreakerState != "closed" {
		t.Fatalf("after healed probe: %+v", st)
	}
	if _, err := s.Fetch(ctx); err != nil {
		t.Fatalf("closed fetch: %v", err)
	}
}

func TestBreakerEmitsOpenEvent(t *testing.T) {
	clock := NewFakeClock()
	rec := &trace.Recorder{}
	fault := NewFault("db", testStore(t))
	fault.SetErr(errors.New("boom"))
	s := WithBreaker(fault, BreakerOptions{Threshold: 1, Clock: clock})
	ctx := WithSink(context.Background(), rec)
	s.Fetch(ctx) //nolint:errcheck // failure is the point
	opens := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindBreakerOpen && e.Detail == "db" {
			opens++
		}
	}
	if opens != 1 {
		t.Errorf("breaker-open events = %d, want 1", opens)
	}
}

// Stale-while-revalidate: a fresh snapshot is served directly; an
// expired one is served immediately (stale-served event, counter) while
// one background refresh updates it.
func TestCacheStaleWhileRevalidate(t *testing.T) {
	clock := NewFakeClock()
	newStore := testStore(t, "new")
	oldStore := testStore(t, "old")
	var mu sync.Mutex
	serving := oldStore
	fetches := 0
	inner := FromFunc("api", func(context.Context) (*tree.Store, error) {
		mu.Lock()
		defer mu.Unlock()
		fetches++
		return serving, nil
	})
	c := WithCache(inner, CacheOptions{TTL: time.Minute, Clock: clock})
	ctx := context.Background()

	// Cold fill.
	got, err := c.Fetch(ctx)
	if err != nil || got != oldStore {
		t.Fatalf("cold fetch = %p, %v", got, err)
	}
	// Fresh: served from the snapshot, no new fetch.
	if got, _ = c.Fetch(ctx); got != oldStore {
		t.Fatal("fresh fetch missed the snapshot")
	}
	mu.Lock()
	if fetches != 1 {
		mu.Unlock()
		t.Fatalf("fetches = %d, want 1", fetches)
	}
	serving = newStore
	mu.Unlock()

	// Expired: the stale snapshot is served and a refresh runs.
	clock.Advance(2 * time.Minute)
	rec := &trace.Recorder{}
	got, err = c.Fetch(WithSink(ctx, rec))
	if err != nil || got != oldStore {
		t.Fatalf("stale fetch = %p, %v (want the old snapshot)", got, err)
	}
	stale := 0
	for _, e := range rec.Events() {
		if e.Kind == trace.KindStaleServed && e.Detail == "api" {
			stale++
		}
	}
	if stale != 1 {
		t.Errorf("stale-served events = %d, want 1", stale)
	}
	c.Wait()
	if got, _ = c.Fetch(ctx); got != newStore {
		t.Fatal("refresh did not install the new snapshot")
	}
	if st := StatsOf(c); st.StaleServed != 1 {
		t.Errorf("StaleServed = %d, want 1", st.StaleServed)
	}
}

// A failing refresh keeps the last good snapshot serving — the
// degradation the mediator relies on when a wrapper goes down.
func TestCacheServesStaleAcrossFailures(t *testing.T) {
	clock := NewFakeClock()
	good := testStore(t, "good")
	fault := NewFault("api", good).WithClock(clock)
	c := WithCache(fault, CacheOptions{TTL: time.Minute, Clock: clock})
	ctx := context.Background()
	if _, err := c.Fetch(ctx); err != nil {
		t.Fatal(err)
	}
	fault.SetErr(errors.New("down"))
	clock.Advance(5 * time.Minute)
	got, err := c.Fetch(ctx)
	if err != nil || got != good {
		t.Fatalf("degraded fetch = %p, %v, want the stale snapshot", got, err)
	}
	c.Wait()
	st := StatsOf(c)
	if st.LastErr == "" {
		t.Error("refresh failure not recorded in LastErr")
	}
	if st.StaleAge < 5*time.Minute {
		t.Errorf("StaleAge = %v, want >= 5m", st.StaleAge)
	}
	// Refresh (forced, failing) keeps the snapshot and returns the error.
	if err := c.Refresh(ctx); err == nil {
		t.Fatal("forced refresh of a down source should fail")
	}
	if got, _ := c.Fetch(ctx); got != good {
		t.Fatal("failed forced refresh dropped the snapshot")
	}
	// Healed: forced refresh succeeds and resets the error.
	fault.SetErr(nil)
	if err := c.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if st := StatsOf(c); st.LastErr != "" || st.StaleAge != 0 {
		t.Errorf("after healed refresh: %+v", st)
	}
}

func TestCacheInvalidateForcesColdFill(t *testing.T) {
	clock := NewFakeClock()
	fault := NewFault("api", testStore(t, "a")).WithClock(clock)
	c := WithCache(fault, CacheOptions{Clock: clock})
	ctx := context.Background()
	if _, err := c.Fetch(ctx); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	fault.SetErr(errors.New("down"))
	if _, err := c.Fetch(ctx); err == nil {
		t.Fatal("cold fill of a down source should fail, not serve the dropped snapshot")
	}
}

func TestTimeoutCancelsSlowFetch(t *testing.T) {
	slow := FromFunc("slow", func(ctx context.Context) (*tree.Store, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	s := WithTimeout(slow, 5*time.Millisecond)
	start := time.Now()
	_, err := s.Fetch(context.Background())
	if err == nil {
		t.Fatal("want timeout error")
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("timeout took %v", since)
	}
	if st := StatsOf(s); st.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1", st.Timeouts)
	}
}

// The conventional chain composes: stats from every layer merge into
// one snapshot, and the cache keeps the chain serving when the inner
// source dies.
func TestComposedChainStats(t *testing.T) {
	clock := NewFakeClock()
	store := testStore(t, "a")
	fault := NewFault("chain", store,
		Step{Fail: errors.New("cold blip")}, // absorbed by retry on the cold fill
	).WithClock(clock)
	chain := WithCache(
		WithBreaker(
			WithRetry(fault, RetryOptions{MaxAttempts: 2, Clock: clock, Jitter: -1}),
			BreakerOptions{Threshold: 3, Clock: clock},
		),
		CacheOptions{TTL: time.Minute, Clock: clock},
	)
	if _, err := chain.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := StatsOf(chain)
	if st.Name != "chain" {
		t.Errorf("Name = %q", st.Name)
	}
	if st.Attempts != 2 || st.Failures != 1 || st.Retries != 1 {
		t.Errorf("retry layer: %+v", st)
	}
	if st.BreakerState != "closed" || st.BreakerOpens != 0 {
		t.Errorf("breaker layer: %+v", st)
	}
	if st.StaleServed != 0 || st.StaleAge != 0 {
		t.Errorf("cache layer: %+v", st)
	}
}

// Retrying an open breaker is pointless; the retry decorator stops on
// breaker rejections instead of burning backoff cycles. (Conventional
// order puts the breaker outside retry; this pins the unconventional
// order anyway.)
func TestRetryDoesNotHammerOpenBreaker(t *testing.T) {
	clock := NewFakeClock()
	fault := NewFault("db", testStore(t)).WithClock(clock)
	fault.SetErr(errors.New("boom"))
	brk := WithBreaker(fault, BreakerOptions{Threshold: 1, Cooldown: time.Hour, Clock: clock})
	s := WithRetry(brk, RetryOptions{MaxAttempts: 5, Clock: clock, Jitter: -1})
	if _, err := s.Fetch(context.Background()); err == nil {
		t.Fatal("want error")
	}
	// Attempt 1 trips the breaker (threshold 1); attempt 2 is
	// rejected; the remaining 3 attempts are skipped.
	if got := StatsOf(s); got.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (stop on ErrBreakerOpen)", got.Attempts)
	}
}

func TestFaultScriptAndLatency(t *testing.T) {
	clock := NewFakeClock()
	f := NewFault("f", testStore(t, "a"),
		Step{Latency: 100 * time.Millisecond},
		Step{Fail: errors.New("boom")},
	).WithClock(clock)
	if _, err := f.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sleeps := clock.Sleeps(); len(sleeps) != 1 || sleeps[0] != 100*time.Millisecond {
		t.Errorf("latency sleeps = %v", sleeps)
	}
	if _, err := f.Fetch(context.Background()); err == nil {
		t.Fatal("step 2 should fail")
	}
	// Past the script: healthy.
	if _, err := f.Fetch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Calls() != 3 {
		t.Errorf("calls = %d", f.Calls())
	}
}

func TestFaultLoopReplays(t *testing.T) {
	f := NewFault("f", testStore(t, "a"), Step{Fail: errors.New("boom")}, Step{}).Loop(true)
	for i := 0; i < 4; i++ {
		_, err := f.Fetch(context.Background())
		if wantErr := i%2 == 0; (err != nil) != wantErr {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
}

// Concurrent fetches through the full chain are safe and the cold fill
// is single-flight: racing cold fetches hit the inner source once.
func TestCacheColdFillSingleFlight(t *testing.T) {
	var fetches counter
	inner := FromFunc("api", func(context.Context) (*tree.Store, error) {
		fetches.Add(1)
		time.Sleep(time.Millisecond)
		return tree.NewStore(), nil
	})
	c := WithCache(inner, CacheOptions{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Fetch(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if n := fetches.Load(); n != 1 {
		t.Errorf("inner fetches = %d, want 1 (single-flight cold fill)", n)
	}
}

func TestStatsOfPlainSource(t *testing.T) {
	s := Static("plain", tree.NewStore())
	if st := StatsOf(s); st.Name != "plain" || st.Attempts != 0 {
		t.Errorf("StatsOf(plain) = %+v", st)
	}
}

func TestFetchErrorMentionsEverySource(t *testing.T) {
	// Compile-time guard that error text stays stable for operators.
	err := fmt.Errorf("wrapped: %w", errors.New("inner"))
	if err == nil {
		t.Fatal()
	}
}
