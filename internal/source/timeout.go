package source

import (
	"context"
	"errors"
	"fmt"
	"time"

	"yat/internal/tree"
)

// timeouter bounds each fetch with a deadline.
type timeouter struct {
	inner    Source
	d        time.Duration
	timeouts counter
}

// WithTimeout decorates a source with a per-fetch deadline. The
// timeout is cooperative — the inner source must honor its context —
// so an expired fetch returns promptly without leaking a goroutine,
// which is the property the soak job's leak check pins.
func WithTimeout(s Source, d time.Duration) Source {
	return &timeouter{inner: s, d: d}
}

func (t *timeouter) Name() string { return t.inner.Name() }

func (t *timeouter) Fetch(ctx context.Context) (*tree.Store, error) {
	tctx, cancel := context.WithTimeout(ctx, t.d)
	defer cancel()
	store, err := t.inner.Fetch(tctx)
	if err != nil && errors.Is(tctx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
		t.timeouts.Add(1)
		return nil, fmt.Errorf("source %s: fetch exceeded %v: %w", t.inner.Name(), t.d, err)
	}
	return store, err
}

// SourceStats implements Statser.
func (t *timeouter) SourceStats() Stats {
	s := StatsOf(t.inner)
	s.Timeouts += t.timeouts.Load()
	return s
}
