// Package trace is the engine's structured observability layer: the
// run loop emits typed events per phase per rule (§3.1's five phases,
// plus fixpoint round boundaries and run start/end), and any consumer
// implementing Sink can attach to a run through engine.Options.Trace.
//
// The package defines one ready-made sink, Profile, which aggregates
// the event stream into per-rule/per-phase counts and wall times and
// renders them as an EXPLAIN-style table (text or JSON). Counts are
// order-independent, so a Profile collected at any Parallelism setting
// reports identical numbers; only wall times vary with the schedule.
//
// The contract with the engine is strict in both directions:
//
//   - Disabled is free. With a nil sink the engine performs no event
//     construction, no time.Now() calls and no allocations on behalf
//     of tracing — the hot path is byte-for-byte the pre-trace code.
//   - Enabled is concurrent. With Parallelism > 1 events are emitted
//     from worker goroutines; a Sink must be safe for concurrent use.
//     Event *order* across rules is schedule-dependent, event *counts*
//     per (rule, phase, kind) are deterministic.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase identifies one of the five evaluation phases of §3.1, plus a
// pseudo-phase for run/round structure events.
type Phase int

const (
	// PhaseRun groups run- and round-level events (no rule attached).
	PhaseRun Phase = iota
	// PhaseMatch is phase 1: pattern matching of inputs against rule
	// bodies.
	PhaseMatch
	// PhaseFunctions is phase 2: external function application with
	// the type filter.
	PhaseFunctions
	// PhasePredicates is phase 3: predicate filtering.
	PhasePredicates
	// PhaseSkolem is phase 4: head Skolem evaluation and grouping.
	PhaseSkolem
	// PhaseConstruct is phase 5: output tree construction.
	PhaseConstruct
	// PhaseSlice groups demand-driven events: slice computations and
	// per-rule cache decisions of the mediator's query pushdown.
	PhaseSlice
	// PhaseSource groups source-layer events: wrapper fetches, retry
	// attempts, breaker trips and stale-snapshot serves of the
	// mediator's fault-tolerant source layer.
	PhaseSource
	// PhaseFederate groups federation events: per-shard scatter calls,
	// degraded children and §4 compose fusions of the federation
	// planner.
	PhaseFederate

	numPhases
)

func (p Phase) String() string {
	switch p {
	case PhaseRun:
		return "run"
	case PhaseMatch:
		return "match"
	case PhaseFunctions:
		return "functions"
	case PhasePredicates:
		return "predicates"
	case PhaseSkolem:
		return "skolem"
	case PhaseConstruct:
		return "construct"
	case PhaseSlice:
		return "slice"
	case PhaseSource:
		return "source"
	case PhaseFederate:
		return "federate"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Kind classifies an event.
type Kind int

const (
	// KindRunStart opens a run. Detail holds the program name.
	KindRunStart Kind = iota
	// KindRunEnd closes a run; Duration is total wall time.
	KindRunEnd
	// KindRound marks the start of one activation-fixpoint round;
	// Round is 1-based and Count is the number of pending activations.
	KindRound
	// KindMatch records one (rule, activation) matching attempt;
	// Count is the number of bindings produced (0 means the rule did
	// not fire on this input).
	KindMatch
	// KindCall records one external function invocation (let or
	// predicate call); Detail is the function name and Duration its
	// wall time. Count is 1 when the call succeeded past the type
	// filter, 0 when the filter rejected it.
	KindCall
	// KindBindingKept records a binding that survived phases 2–3.
	KindBindingKept
	// KindBindingDropped records a binding dropped during phases 2–5;
	// Detail is the machine-readable reason.
	KindBindingDropped
	// KindSkolemDefined records one distinct head Skolem identity;
	// Detail is the identity display form.
	KindSkolemDefined
	// KindConstruct records the construction of one output tree.
	KindConstruct
	// KindSliceComputed records one demand-driven slice evaluation
	// (engine.RunSlice); Count is the number of rules in the slice and
	// Detail its rendering (requested functors, construct/support
	// split).
	KindSliceComputed
	// KindCacheHit records a rule whose materialized outputs were
	// served from the mediator's per-rule memo; Rule names it.
	KindCacheHit
	// KindCacheMiss records a rule that had to be (re)materialized
	// for a query; Rule names it.
	KindCacheMiss
	// KindSourceFetch records one source fetch attempt by the
	// mediator; Detail is the source name, Count is 1 on success and 0
	// on failure, Duration the fetch wall time.
	KindSourceFetch
	// KindSourceRetry records a retry re-attempt against a source;
	// Detail is the source name, Count the 1-based attempt number.
	KindSourceRetry
	// KindBreakerOpen records a circuit breaker tripping open; Detail
	// is the source name, Count the consecutive-failure count.
	KindBreakerOpen
	// KindStaleServed records a fetch answered from an expired
	// snapshot while a refresh ran; Detail is the source name,
	// Duration the snapshot's age.
	KindStaleServed
	// KindAnalysis announces that the run uses precomputed program
	// facts (engine.AnalyzeProgram); Detail is the facts summary —
	// symbol-table size, dispatch roots, dead rules, strata.
	KindAnalysis
	// KindDeltaApplied records a source refresh absorbed by delta
	// propagation (the cache was patched in place, or the delta was
	// empty or touched no cached rule); Detail carries the source name
	// and inserted/deleted/changed/patched-rule counts, Count the
	// number of patched rules.
	KindDeltaApplied
	// KindDeltaFallback records a source refresh that could not be
	// patched and fell back to a slice re-run or wholesale
	// invalidation; Detail carries the source name and the machine-
	// readable fallback reason, Count the number of re-run rules whose
	// outputs actually changed.
	KindDeltaFallback
	// KindShardAsk records one scatter call into a federation child;
	// Detail is the shard name, Count the number of answers it
	// returned, Duration the call's wall time.
	KindShardAsk
	// KindShardDegraded records a scatter call the federation absorbed
	// as a partial result: the child failed after its guard chain gave
	// up. Detail carries the shard name and the error.
	KindShardDegraded
	// KindComposeFused records the federation planner fusing a
	// cross-mediator pipeline stage with §4.3 composition; Detail
	// names the two programs and the fused rule count, Count the fused
	// rules. Its presence (and the absence of any intermediate-model
	// materialization) is how tests assert the intermediate model
	// never existed.
	KindComposeFused
)

func (k Kind) String() string {
	switch k {
	case KindRunStart:
		return "run-start"
	case KindRunEnd:
		return "run-end"
	case KindRound:
		return "round"
	case KindMatch:
		return "match"
	case KindCall:
		return "call"
	case KindBindingKept:
		return "binding-kept"
	case KindBindingDropped:
		return "binding-dropped"
	case KindSkolemDefined:
		return "skolem-defined"
	case KindConstruct:
		return "construct"
	case KindSliceComputed:
		return "slice"
	case KindCacheHit:
		return "cache-hit"
	case KindCacheMiss:
		return "cache-miss"
	case KindSourceFetch:
		return "source-fetch"
	case KindSourceRetry:
		return "source-retry"
	case KindBreakerOpen:
		return "breaker-open"
	case KindStaleServed:
		return "stale-served"
	case KindAnalysis:
		return "analysis"
	case KindDeltaApplied:
		return "delta-applied"
	case KindDeltaFallback:
		return "delta-fallback"
	case KindShardAsk:
		return "shard-ask"
	case KindShardDegraded:
		return "shard-degraded"
	case KindComposeFused:
		return "compose-fused"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Drop reasons carried by KindBindingDropped events (Event.Detail).
const (
	DropUnresolvedOperand = "unresolved-operand"
	DropTypeFilter        = "type-filter"
	DropFunctionError     = "function-error"
	DropPredicateFalse    = "predicate-false"
	DropPredicateError    = "predicate-error"
	DropSkolemError       = "skolem-error"
	DropNonDeterminism    = "non-determinism"
)

// Event is one observation from the engine. It is passed by value and
// never retained by the engine, so sinks may keep or discard it
// freely.
type Event struct {
	Kind     Kind
	Phase    Phase
	Rule     string // empty for run/round events
	Round    int    // 1-based fixpoint round, when known
	Count    int    // kind-specific cardinality (bindings, pending, …)
	Detail   string // function name, drop reason, identity, …
	Duration time.Duration
}

// Sink consumes engine events. Implementations must be safe for
// concurrent use when the run's Parallelism exceeds 1.
type Sink interface {
	Emit(Event)
}

// PhaseProfile aggregates one rule's activity inside one phase.
type PhaseProfile struct {
	// Events is the number of events attributed to the phase.
	Events int `json:"events"`
	// Items sums the event counts: bindings matched (match), calls
	// passing the type filter (functions), bindings kept
	// (predicates), bindings grouped (skolem), outputs built
	// (construct).
	Items int `json:"items"`
	// Wall is the accumulated wall time attributed to the phase.
	Wall time.Duration `json:"wall_ns"`
}

// RuleProfile aggregates one rule across all phases.
type RuleProfile struct {
	Rule string `json:"rule"`
	// Phases indexes PhaseMatch … PhaseConstruct.
	Phases [numPhases]PhaseProfile `json:"-"`
	// Fired is the number of (activation, rule) attempts that
	// produced at least one binding.
	Fired int `json:"fired"`
	// Skolems is the number of distinct head identities defined.
	Skolems int `json:"skolems"`
	// Outputs is the number of output trees constructed.
	Outputs int `json:"outputs"`
	// Calls counts external function invocations by function name.
	Calls map[string]int `json:"calls,omitempty"`
	// Drops counts dropped bindings by reason.
	Drops map[string]int `json:"drops,omitempty"`
	// Kept is the number of bindings surviving phases 2–3.
	Kept int `json:"kept"`
	// CacheHits and CacheMisses count the mediator's per-rule memo
	// decisions for this rule (demand-driven queries only).
	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`
}

// ShardProfile aggregates a federation's scatter calls into one named
// child: asks with degraded outcomes and the answers gathered.
type ShardProfile struct {
	Shard    string        `json:"shard"`
	Asks     int           `json:"asks"`
	Degraded int           `json:"degraded"`
	Answers  int           `json:"answers"`
	Wall     time.Duration `json:"wall_ns"`
}

// SourceProfile aggregates the source-layer activity of one named
// source: fetches with failures, retry re-attempts, breaker trips and
// stale-snapshot serves.
type SourceProfile struct {
	Source       string        `json:"source"`
	Fetches      int           `json:"fetches"`
	Failures     int           `json:"failures"`
	Retries      int           `json:"retries"`
	BreakerOpens int           `json:"breaker_opens"`
	StaleServed  int           `json:"stale_served"`
	Wall         time.Duration `json:"wall_ns"`
}

// Profile is a Sink that aggregates the event stream into a
// per-rule/per-phase table. The zero value is not ready; use
// NewProfile.
type Profile struct {
	mu      sync.Mutex
	program string
	rules   map[string]*RuleProfile
	rounds  int
	// pending per round, in round order.
	roundPending []int
	events       int
	wall         time.Duration
	// slices counts demand-driven slice evaluations; sliceRules sums
	// the rules they ran.
	slices     int
	sliceRules int
	// analysis holds the facts summary of an optimized run (empty for
	// unoptimized runs).
	analysis string
	// deltaApplied/deltaFallbacks count incremental-refresh outcomes;
	// deltaLines retains their Detail strings in arrival order for the
	// EXPLAIN `delta:` lines.
	deltaApplied   int
	deltaFallbacks int
	deltaLines     []string
	// sources aggregates source-layer events per source name.
	sources map[string]*SourceProfile
	// shards aggregates federation scatter events per shard name;
	// fusions retains the compose-fusion Detail strings in arrival
	// order for the EXPLAIN `fused:` lines.
	shards  map[string]*ShardProfile
	fusions []string
}

// NewProfile returns an empty profile ready to attach to a run.
func NewProfile() *Profile {
	return &Profile{rules: map[string]*RuleProfile{}, sources: map[string]*SourceProfile{}}
}

// Emit implements Sink.
func (p *Profile) Emit(e Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.events++
	switch e.Kind {
	case KindRunStart:
		p.program = e.Detail
		return
	case KindRunEnd:
		p.wall = e.Duration
		return
	case KindRound:
		p.rounds++
		p.roundPending = append(p.roundPending, e.Count)
		return
	case KindSliceComputed:
		p.slices++
		p.sliceRules += e.Count
		return
	case KindAnalysis:
		p.analysis = e.Detail
		return
	case KindDeltaApplied:
		p.deltaApplied++
		p.deltaLines = append(p.deltaLines, e.Detail)
		return
	case KindDeltaFallback:
		p.deltaFallbacks++
		p.deltaLines = append(p.deltaLines, e.Detail)
		return
	case KindSourceFetch:
		sp := p.source(e.Detail)
		sp.Fetches++
		if e.Count == 0 {
			sp.Failures++
		}
		sp.Wall += e.Duration
		return
	case KindSourceRetry:
		p.source(e.Detail).Retries++
		return
	case KindBreakerOpen:
		p.source(e.Detail).BreakerOpens++
		return
	case KindStaleServed:
		p.source(e.Detail).StaleServed++
		return
	case KindShardAsk:
		sh := p.shard(e.Detail)
		sh.Asks++
		sh.Answers += e.Count
		sh.Wall += e.Duration
		return
	case KindShardDegraded:
		// Detail is "shard: error"; attribute to the shard name.
		name := e.Detail
		if i := strings.Index(name, ":"); i >= 0 {
			name = name[:i]
		}
		p.shard(name).Degraded++
		return
	case KindComposeFused:
		p.fusions = append(p.fusions, e.Detail)
		return
	}
	r := p.rule(e.Rule)
	ph := &r.Phases[e.Phase]
	ph.Events++
	ph.Wall += e.Duration
	switch e.Kind {
	case KindMatch:
		if e.Count > 0 {
			r.Fired++
		}
		ph.Items += e.Count
	case KindCall:
		ph.Items += e.Count
		if r.Calls == nil {
			r.Calls = map[string]int{}
		}
		r.Calls[e.Detail]++
	case KindBindingKept:
		r.Kept++
		ph.Items++
	case KindBindingDropped:
		if r.Drops == nil {
			r.Drops = map[string]int{}
		}
		r.Drops[e.Detail]++
	case KindSkolemDefined:
		r.Skolems += e.Count
		ph.Items += e.Count
	case KindConstruct:
		r.Outputs += e.Count
		ph.Items += e.Count
	case KindCacheHit:
		r.CacheHits++
		ph.Items++
	case KindCacheMiss:
		r.CacheMisses++
		ph.Items++
	}
}

func (p *Profile) shard(name string) *ShardProfile {
	if p.shards == nil {
		p.shards = map[string]*ShardProfile{}
	}
	s, ok := p.shards[name]
	if !ok {
		s = &ShardProfile{Shard: name}
		p.shards[name] = s
	}
	return s
}

func (p *Profile) source(name string) *SourceProfile {
	if p.sources == nil {
		p.sources = map[string]*SourceProfile{}
	}
	s, ok := p.sources[name]
	if !ok {
		s = &SourceProfile{Source: name}
		p.sources[name] = s
	}
	return s
}

func (p *Profile) rule(name string) *RuleProfile {
	r, ok := p.rules[name]
	if !ok {
		r = &RuleProfile{Rule: name}
		p.rules[name] = r
	}
	return r
}

// Program returns the program name announced by the run (empty before
// the run starts).
func (p *Profile) Program() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.program
}

// Rounds returns the number of fixpoint rounds observed.
func (p *Profile) Rounds() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rounds
}

// Slices returns the number of demand-driven slice evaluations
// observed (zero for plain runs).
func (p *Profile) Slices() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.slices
}

// Analysis returns the facts summary announced by an optimized run
// (empty for unoptimized runs).
func (p *Profile) Analysis() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.analysis
}

// Events returns the total number of events received.
func (p *Profile) Events() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events
}

// Wall returns the total run wall time (zero until KindRunEnd).
func (p *Profile) Wall() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wall
}

// Shards returns the per-shard profiles sorted by shard name (the
// values are copies; empty without federation events).
func (p *Profile) Shards() []ShardProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.shards))
	for n := range p.shards {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ShardProfile, len(names))
	for i, n := range names {
		out[i] = *p.shards[n]
	}
	return out
}

// Fusions returns the compose-fusion summaries announced by the
// federation planner, in arrival order (empty without fusions).
func (p *Profile) Fusions() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fusions...)
}

// Sources returns the per-source profiles sorted by source name (the
// values are copies; empty without source-layer events).
func (p *Profile) Sources() []SourceProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.sources))
	for n := range p.sources {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]SourceProfile, len(names))
	for i, n := range names {
		out[i] = *p.sources[n]
	}
	return out
}

// Rules returns the per-rule profiles sorted by rule name. The
// returned values are deep copies; mutating them does not affect the
// profile.
func (p *Profile) Rules() []RuleProfile {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.rules))
	for n := range p.rules {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]RuleProfile, len(names))
	for i, n := range names {
		out[i] = copyRule(p.rules[n])
	}
	return out
}

func copyRule(r *RuleProfile) RuleProfile {
	c := *r
	c.Calls = copyCounts(r.Calls)
	c.Drops = copyCounts(r.Drops)
	return c
}

func copyCounts(m map[string]int) map[string]int {
	if m == nil {
		return nil
	}
	c := make(map[string]int, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// dataPhases are the phases shown in the EXPLAIN table, in §3.1 order.
var dataPhases = [...]Phase{PhaseMatch, PhaseFunctions, PhasePredicates, PhaseSkolem, PhaseConstruct}

// Render writes the EXPLAIN-style table. With timing false the wall
// columns are omitted, which makes the output deterministic across
// runs and Parallelism settings — the form the golden tests pin.
func (p *Profile) Render(w io.Writer, timing bool) error {
	rules := p.Rules()
	sources := p.Sources()
	shards := p.Shards()
	p.mu.Lock()
	program, rounds, pending, wall := p.program, p.rounds, append([]int(nil), p.roundPending...), p.wall
	slices, sliceRules := p.slices, p.sliceRules
	analysis := p.analysis
	deltaApplied, deltaFallbacks := p.deltaApplied, p.deltaFallbacks
	deltaLines := append([]string(nil), p.deltaLines...)
	fusions := append([]string(nil), p.fusions...)
	p.mu.Unlock()

	name := program
	if name == "" {
		name = "(unnamed)"
	}
	if _, err := fmt.Fprintf(w, "EXPLAIN %s\n", name); err != nil {
		return err
	}
	if timing {
		fmt.Fprintf(w, "rounds: %d %v  total: %v\n", rounds, pending, wall)
	} else {
		fmt.Fprintf(w, "rounds: %d %v\n", rounds, pending)
	}
	if analysis != "" {
		fmt.Fprintf(w, "analysis: %s\n", analysis)
	}
	if slices > 0 {
		fmt.Fprintf(w, "slices: %d rules=%d\n", slices, sliceRules)
	}
	if deltaApplied > 0 || deltaFallbacks > 0 {
		fmt.Fprintf(w, "deltas: applied=%d fallbacks=%d\n", deltaApplied, deltaFallbacks)
		for _, l := range deltaLines {
			fmt.Fprintf(w, "delta: %s\n", l)
		}
	}
	for _, l := range fusions {
		fmt.Fprintf(w, "fused: %s\n", l)
	}
	for _, s := range shards {
		fmt.Fprintf(w, "shard %s  asks=%d degraded=%d answers=%d",
			s.Shard, s.Asks, s.Degraded, s.Answers)
		if timing {
			fmt.Fprintf(w, " wall=%v", s.Wall)
		}
		fmt.Fprintln(w)
	}
	for _, s := range sources {
		fmt.Fprintf(w, "source %s  fetches=%d failures=%d retries=%d breaker-opens=%d stale-served=%d",
			s.Source, s.Fetches, s.Failures, s.Retries, s.BreakerOpens, s.StaleServed)
		if timing {
			fmt.Fprintf(w, " wall=%v", s.Wall)
		}
		fmt.Fprintln(w)
	}
	for _, r := range rules {
		fmt.Fprintf(w, "\nrule %s  fired=%d kept=%d skolems=%d outputs=%d\n",
			r.Rule, r.Fired, r.Kept, r.Skolems, r.Outputs)
		for _, ph := range dataPhases {
			pp := r.Phases[ph]
			if pp.Events == 0 {
				continue
			}
			if timing {
				fmt.Fprintf(w, "  %-10s events=%-6d items=%-6d wall=%v\n", ph, pp.Events, pp.Items, pp.Wall)
			} else {
				fmt.Fprintf(w, "  %-10s events=%-6d items=%d\n", ph, pp.Events, pp.Items)
			}
		}
		if len(r.Calls) > 0 {
			fmt.Fprintf(w, "  calls      %s\n", formatCounts(r.Calls))
		}
		if len(r.Drops) > 0 {
			fmt.Fprintf(w, "  drops      %s\n", formatCounts(r.Drops))
		}
		if r.CacheHits > 0 || r.CacheMisses > 0 {
			fmt.Fprintf(w, "  cache      hits=%d misses=%d\n", r.CacheHits, r.CacheMisses)
		}
	}
	return nil
}

// Text renders the table to a string (see Render).
func (p *Profile) Text(timing bool) string {
	var sb strings.Builder
	p.Render(&sb, timing) // strings.Builder never errors
	return sb.String()
}

func formatCounts(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, " ")
}

// jsonPhase is the JSON shape of one phase row.
type jsonPhase struct {
	Phase  string `json:"phase"`
	Events int    `json:"events"`
	Items  int    `json:"items"`
	WallNS int64  `json:"wall_ns,omitempty"`
}

// jsonRule is the JSON shape of one rule block.
type jsonRule struct {
	Rule        string         `json:"rule"`
	Fired       int            `json:"fired"`
	Kept        int            `json:"kept"`
	Skolems     int            `json:"skolems"`
	Outputs     int            `json:"outputs"`
	Phases      []jsonPhase    `json:"phases"`
	Calls       map[string]int `json:"calls,omitempty"`
	Drops       map[string]int `json:"drops,omitempty"`
	CacheHits   int            `json:"cache_hits,omitempty"`
	CacheMisses int            `json:"cache_misses,omitempty"`
}

// jsonSource is the JSON shape of one source block.
type jsonSource struct {
	Source       string `json:"source"`
	Fetches      int    `json:"fetches"`
	Failures     int    `json:"failures"`
	Retries      int    `json:"retries"`
	BreakerOpens int    `json:"breaker_opens"`
	StaleServed  int    `json:"stale_served"`
	WallNS       int64  `json:"wall_ns,omitempty"`
}

// jsonShard is the JSON shape of one federation shard block.
type jsonShard struct {
	Shard    string `json:"shard"`
	Asks     int    `json:"asks"`
	Degraded int    `json:"degraded"`
	Answers  int    `json:"answers"`
	WallNS   int64  `json:"wall_ns,omitempty"`
}

// jsonProfile is the JSON shape of the whole profile.
type jsonProfile struct {
	Program        string       `json:"program"`
	Rounds         int          `json:"rounds"`
	RoundPending   []int        `json:"round_pending,omitempty"`
	Events         int          `json:"events"`
	WallNS         int64        `json:"wall_ns,omitempty"`
	Slices         int          `json:"slices,omitempty"`
	SliceRules     int          `json:"slice_rules,omitempty"`
	DeltaApplied   int          `json:"delta_applied,omitempty"`
	DeltaFallbacks int          `json:"delta_fallbacks,omitempty"`
	Deltas         []string     `json:"deltas,omitempty"`
	Analysis       string       `json:"analysis,omitempty"`
	Fused          []string     `json:"fused,omitempty"`
	Shards         []jsonShard  `json:"shards,omitempty"`
	Sources        []jsonSource `json:"sources,omitempty"`
	Rules          []jsonRule   `json:"rules"`
}

// JSON renders the profile as indented JSON. With timing false all
// wall-time fields are zeroed (and omitted), making the document
// deterministic across runs.
func (p *Profile) JSON(timing bool) ([]byte, error) {
	rules := p.Rules()
	p.mu.Lock()
	doc := jsonProfile{
		Program:        p.program,
		Rounds:         p.rounds,
		RoundPending:   append([]int(nil), p.roundPending...),
		Events:         p.events,
		Slices:         p.slices,
		SliceRules:     p.sliceRules,
		DeltaApplied:   p.deltaApplied,
		DeltaFallbacks: p.deltaFallbacks,
		Deltas:         append([]string(nil), p.deltaLines...),
		Analysis:       p.analysis,
		Fused:          append([]string(nil), p.fusions...),
	}
	if timing {
		doc.WallNS = p.wall.Nanoseconds()
	}
	p.mu.Unlock()
	for _, s := range p.Shards() {
		js := jsonShard{Shard: s.Shard, Asks: s.Asks, Degraded: s.Degraded, Answers: s.Answers}
		if timing {
			js.WallNS = s.Wall.Nanoseconds()
		}
		doc.Shards = append(doc.Shards, js)
	}
	for _, s := range p.Sources() {
		js := jsonSource{Source: s.Source, Fetches: s.Fetches, Failures: s.Failures,
			Retries: s.Retries, BreakerOpens: s.BreakerOpens, StaleServed: s.StaleServed}
		if timing {
			js.WallNS = s.Wall.Nanoseconds()
		}
		doc.Sources = append(doc.Sources, js)
	}
	for _, r := range rules {
		jr := jsonRule{
			Rule:    r.Rule,
			Fired:   r.Fired,
			Kept:    r.Kept,
			Skolems: r.Skolems,
			Outputs: r.Outputs,
			Calls:   r.Calls,
			Drops:   r.Drops,

			CacheHits:   r.CacheHits,
			CacheMisses: r.CacheMisses,
		}
		for _, ph := range dataPhases {
			pp := r.Phases[ph]
			if pp.Events == 0 {
				continue
			}
			row := jsonPhase{Phase: ph.String(), Events: pp.Events, Items: pp.Items}
			if timing {
				row.WallNS = pp.Wall.Nanoseconds()
			}
			jr.Phases = append(jr.Phases, row)
		}
		doc.Rules = append(doc.Rules, jr)
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Recorder is a Sink that retains every event in arrival order —
// useful in tests and for building custom renderers. Unlike Profile
// its contents are schedule-dependent under parallelism.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Multi fans one event stream out to several sinks.
func Multi(sinks ...Sink) Sink {
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

type multi []Sink

func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}
