package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestProfileAggregation(t *testing.T) {
	p := NewProfile()
	p.Emit(Event{Kind: KindRunStart, Detail: "demo"})
	p.Emit(Event{Kind: KindRound, Round: 1, Count: 3})
	p.Emit(Event{Kind: KindMatch, Phase: PhaseMatch, Rule: "R", Count: 2, Duration: time.Millisecond})
	p.Emit(Event{Kind: KindMatch, Phase: PhaseMatch, Rule: "R", Count: 0}) // attempt that did not fire
	p.Emit(Event{Kind: KindCall, Phase: PhaseFunctions, Rule: "R", Count: 1, Detail: "city"})
	p.Emit(Event{Kind: KindCall, Phase: PhaseFunctions, Rule: "R", Count: 0, Detail: "city"}) // type filter rejected
	p.Emit(Event{Kind: KindBindingDropped, Phase: PhaseFunctions, Rule: "R", Detail: DropTypeFilter})
	p.Emit(Event{Kind: KindBindingKept, Phase: PhasePredicates, Rule: "R", Count: 1})
	p.Emit(Event{Kind: KindSkolemDefined, Phase: PhaseSkolem, Rule: "R", Count: 1, Detail: "&Pout(&i1)"})
	p.Emit(Event{Kind: KindConstruct, Phase: PhaseConstruct, Rule: "R", Count: 1})
	p.Emit(Event{Kind: KindConstruct, Phase: PhaseConstruct, Rule: "R", Count: 0}) // errored construction
	p.Emit(Event{Kind: KindRunEnd, Duration: 5 * time.Millisecond})

	if p.Program() != "demo" || p.Rounds() != 1 || p.Wall() != 5*time.Millisecond {
		t.Errorf("run header wrong: %q %d %v", p.Program(), p.Rounds(), p.Wall())
	}
	if p.Events() != 12 {
		t.Errorf("events = %d, want 12", p.Events())
	}
	rules := p.Rules()
	if len(rules) != 1 {
		t.Fatalf("rules = %v", rules)
	}
	r := rules[0]
	if r.Fired != 1 {
		t.Errorf("Fired = %d, want 1 (zero-binding attempts must not count)", r.Fired)
	}
	if r.Kept != 1 || r.Skolems != 1 || r.Outputs != 1 {
		t.Errorf("kept/skolems/outputs = %d/%d/%d, want 1/1/1", r.Kept, r.Skolems, r.Outputs)
	}
	if r.Calls["city"] != 2 {
		t.Errorf("Calls = %v, want city=2 (rejected calls still counted)", r.Calls)
	}
	if r.Drops[DropTypeFilter] != 1 {
		t.Errorf("Drops = %v", r.Drops)
	}
	if m := r.Phases[PhaseMatch]; m.Events != 2 || m.Items != 2 || m.Wall != time.Millisecond {
		t.Errorf("match phase = %+v", m)
	}
	if f := r.Phases[PhaseFunctions]; f.Items != 1 {
		t.Errorf("functions items = %d, want 1 (only calls past the filter)", f.Items)
	}
	if c := r.Phases[PhaseConstruct]; c.Events != 2 || c.Items != 1 {
		t.Errorf("construct phase = %+v", c)
	}
}

func TestRulesAreCopies(t *testing.T) {
	p := NewProfile()
	p.Emit(Event{Kind: KindCall, Phase: PhaseFunctions, Rule: "R", Count: 1, Detail: "zip"})
	p.Rules()[0].Calls["zip"] = 99
	if got := p.Rules()[0].Calls["zip"]; got != 1 {
		t.Errorf("mutating the returned copy leaked into the profile: %d", got)
	}
}

func TestRenderTimingToggle(t *testing.T) {
	p := NewProfile()
	p.Emit(Event{Kind: KindRunStart, Detail: "demo"})
	p.Emit(Event{Kind: KindMatch, Phase: PhaseMatch, Rule: "R", Count: 1, Duration: time.Second})
	p.Emit(Event{Kind: KindRunEnd, Duration: 2 * time.Second})
	plain := p.Text(false)
	if strings.Contains(plain, "wall=") || strings.Contains(plain, "total:") {
		t.Errorf("timing leaked into timing-free rendering:\n%s", plain)
	}
	timed := p.Text(true)
	if !strings.Contains(timed, "total: 2s") || !strings.Contains(timed, "wall=1s") {
		t.Errorf("timing missing:\n%s", timed)
	}
}

func TestRenderUnnamed(t *testing.T) {
	if got := NewProfile().Text(false); !strings.HasPrefix(got, "EXPLAIN (unnamed)\n") {
		t.Errorf("empty profile rendering: %q", got)
	}
}

func TestJSONShape(t *testing.T) {
	p := NewProfile()
	p.Emit(Event{Kind: KindRunStart, Detail: "demo"})
	p.Emit(Event{Kind: KindRound, Round: 1, Count: 2})
	p.Emit(Event{Kind: KindMatch, Phase: PhaseMatch, Rule: "R", Count: 1, Duration: time.Millisecond})
	p.Emit(Event{Kind: KindRunEnd, Duration: time.Second})

	plain, err := p.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "wall_ns") {
		t.Errorf("wall times in timing-free JSON:\n%s", plain)
	}
	timed, err := p.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Program string `json:"program"`
		Rounds  int    `json:"rounds"`
		WallNS  int64  `json:"wall_ns"`
		Rules   []struct {
			Rule   string `json:"rule"`
			Phases []struct {
				Phase  string `json:"phase"`
				WallNS int64  `json:"wall_ns"`
			} `json:"phases"`
		} `json:"rules"`
	}
	if err := json.Unmarshal(timed, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Program != "demo" || doc.Rounds != 1 || doc.WallNS != time.Second.Nanoseconds() {
		t.Errorf("header: %+v", doc)
	}
	if len(doc.Rules) != 1 || doc.Rules[0].Phases[0].Phase != "match" ||
		doc.Rules[0].Phases[0].WallNS != time.Millisecond.Nanoseconds() {
		t.Errorf("rules: %+v", doc.Rules)
	}
}

func TestRecorderOrder(t *testing.T) {
	var r Recorder
	for i := 1; i <= 3; i++ {
		r.Emit(Event{Kind: KindRound, Round: i})
	}
	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("events = %v", events)
	}
	for i, e := range events {
		if e.Round != i+1 {
			t.Errorf("event %d out of order: %+v", i, e)
		}
	}
	// The returned slice is a copy.
	events[0].Round = 99
	if r.Events()[0].Round != 1 {
		t.Error("Events() exposed internal storage")
	}
}

func TestMultiFansOutAndSkipsNil(t *testing.T) {
	p := NewProfile()
	var r Recorder
	m := Multi(p, nil, &r)
	m.Emit(Event{Kind: KindMatch, Phase: PhaseMatch, Rule: "R", Count: 1})
	if p.Events() != 1 || len(r.Events()) != 1 {
		t.Errorf("fan-out missed a sink: %d %d", p.Events(), len(r.Events()))
	}
}

// TestProfileConcurrent hammers one profile from many goroutines; with
// -race this pins the Sink concurrency contract.
func TestProfileConcurrent(t *testing.T) {
	p := NewProfile()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Emit(Event{Kind: KindBindingKept, Phase: PhasePredicates, Rule: "R", Count: 1})
			}
		}()
	}
	wg.Wait()
	if got := p.Rules()[0].Kept; got != workers*perWorker {
		t.Errorf("Kept = %d, want %d", got, workers*perWorker)
	}
}

func TestStringers(t *testing.T) {
	if PhaseConstruct.String() != "construct" || Phase(99).String() != "phase(99)" {
		t.Error("Phase.String wrong")
	}
	if KindSkolemDefined.String() != "skolem-defined" || Kind(99).String() != "kind(99)" {
		t.Error("Kind.String wrong")
	}
	if KindAnalysis.String() != "analysis" {
		t.Error("KindAnalysis.String wrong")
	}
}

// TestAnalysisLine: a KindAnalysis event carries the optimizer facts
// summary into the profile, its text rendering and its JSON document.
// Profiles from unoptimized runs render no analysis line at all.
func TestAnalysisLine(t *testing.T) {
	p := NewProfile()
	p.Emit(Event{Kind: KindRunStart, Detail: "demo"})
	p.Emit(Event{Kind: KindAnalysis, Phase: PhaseRun, Detail: "syms=7 dispatch-roots=3 dead-rules=1 unreachable=0 strata=2"})
	p.Emit(Event{Kind: KindRunEnd, Duration: time.Second})
	if got := p.Analysis(); got != "syms=7 dispatch-roots=3 dead-rules=1 unreachable=0 strata=2" {
		t.Errorf("Analysis() = %q", got)
	}
	text := p.Text(false)
	if !strings.Contains(text, "analysis: syms=7 dispatch-roots=3") {
		t.Errorf("analysis line missing from rendering:\n%s", text)
	}
	doc, err := p.JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), `"analysis": "syms=7`) {
		t.Errorf("analysis missing from JSON:\n%s", doc)
	}

	bare := NewProfile()
	bare.Emit(Event{Kind: KindRunStart, Detail: "demo"})
	bare.Emit(Event{Kind: KindRunEnd})
	if strings.Contains(bare.Text(false), "analysis:") {
		t.Errorf("analysis line rendered without a KindAnalysis event:\n%s", bare.Text(false))
	}
	if doc, _ := bare.JSON(false); strings.Contains(string(doc), `"analysis"`) {
		t.Errorf("analysis key present without a KindAnalysis event:\n%s", doc)
	}
}
