package tree

import (
	"sort"
	"strings"
)

// Name identifies a tree in a Store. Plain names (b1, s1, Rsuppliers)
// have an empty Args slice; Skolem-generated names carry the functor
// and the argument values that minted them, e.g. Psup("VW center").
type Name struct {
	Functor string
	Args    []Value
}

// PlainName returns a Name with no Skolem arguments.
func PlainName(functor string) Name { return Name{Functor: functor} }

// SkolemName returns a Name minted by a Skolem functor application.
func SkolemName(functor string, args ...Value) Name {
	return Name{Functor: functor, Args: args}
}

// IsPlain reports whether the name has no Skolem arguments.
func (n Name) IsPlain() bool { return len(n.Args) == 0 }

// String renders the name in concrete syntax: `Psup("VW center")`.
func (n Name) String() string {
	if n.IsPlain() {
		return n.Functor
	}
	parts := make([]string, len(n.Args))
	for i, a := range n.Args {
		parts[i] = a.Display()
	}
	return n.Functor + "(" + strings.Join(parts, ", ") + ")"
}

// Key returns a canonical map key for the name. Two names are equal
// exactly when their keys are equal.
func (n Name) Key() string {
	if n.IsPlain() {
		return n.Functor
	}
	var b strings.Builder
	b.WriteString(n.Functor)
	b.WriteByte('(')
	for i, a := range n.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		// Prefix with the kind so that Symbol(x) and String("x")
		// mint distinct identities.
		b.WriteString(a.Kind().String())
		b.WriteByte(':')
		b.WriteString(a.Display())
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two names identify the same tree.
func (n Name) Equal(o Name) bool { return n.Key() == o.Key() }

// Store holds named trees. It preserves insertion order for
// deterministic iteration and output.
type Store struct {
	byKey map[string]int
	items []StoreEntry
}

// StoreEntry is one named tree in a Store.
type StoreEntry struct {
	Name Name
	Tree *Node
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{byKey: make(map[string]int)}
}

// Len reports the number of named trees.
func (s *Store) Len() int { return len(s.items) }

// Put binds name to t, replacing any previous binding. It reports
// whether the name was already present.
func (s *Store) Put(name Name, t *Node) (replaced bool) {
	key := name.Key()
	if i, ok := s.byKey[key]; ok {
		s.items[i].Tree = t
		return true
	}
	s.byKey[key] = len(s.items)
	s.items = append(s.items, StoreEntry{Name: name, Tree: t})
	return false
}

// Get returns the tree bound to name.
func (s *Store) Get(name Name) (*Node, bool) {
	i, ok := s.byKey[name.Key()]
	if !ok {
		return nil, false
	}
	return s.items[i].Tree, true
}

// GetKey returns the tree bound to the canonical key (as produced by
// Name.Key).
func (s *Store) GetKey(key string) (*Node, bool) {
	i, ok := s.byKey[key]
	if !ok {
		return nil, false
	}
	return s.items[i].Tree, true
}

// Has reports whether name is bound.
func (s *Store) Has(name Name) bool {
	_, ok := s.byKey[name.Key()]
	return ok
}

// Delete removes the binding for name, if present.
func (s *Store) Delete(name Name) {
	key := name.Key()
	i, ok := s.byKey[key]
	if !ok {
		return
	}
	delete(s.byKey, key)
	s.items = append(s.items[:i], s.items[i+1:]...)
	for j := i; j < len(s.items); j++ {
		s.byKey[s.items[j].Name.Key()] = j
	}
}

// Entries returns the entries in insertion order. The returned slice
// must not be modified.
func (s *Store) Entries() []StoreEntry { return s.items }

// Names returns all names in insertion order.
func (s *Store) Names() []Name {
	out := make([]Name, len(s.items))
	for i, e := range s.items {
		out[i] = e.Name
	}
	return out
}

// SortedEntries returns the entries sorted by canonical key, for
// deterministic output independent of rule firing order.
func (s *Store) SortedEntries() []StoreEntry {
	out := make([]StoreEntry, len(s.items))
	copy(out, s.items)
	sort.Slice(out, func(i, j int) bool {
		return out[i].Name.Key() < out[j].Name.Key()
	})
	return out
}

// Clone returns a deep copy of the store (trees included).
func (s *Store) Clone() *Store {
	c := NewStore()
	for _, e := range s.items {
		c.Put(e.Name, e.Tree.Clone())
	}
	return c
}
