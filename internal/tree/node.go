package tree

import (
	"fmt"
	"strings"
)

// Node is one vertex of a ground YAT tree: a label and an ordered
// list of children. The zero value is not useful; construct nodes
// with New or the typed helpers below.
type Node struct {
	Label    Value
	Children []*Node
}

// New returns a node with the given label and children.
func New(label Value, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// Sym returns a symbol-labeled node.
func Sym(name string, children ...*Node) *Node {
	return New(Symbol(name), children...)
}

// Str returns a string-atom leaf.
func Str(s string) *Node { return New(String(s)) }

// IntLeaf returns an integer-atom leaf.
func IntLeaf(i int64) *Node { return New(Int(i)) }

// FloatLeaf returns a float-atom leaf.
func FloatLeaf(f float64) *Node { return New(Float(f)) }

// BoolLeaf returns a boolean-atom leaf.
func BoolLeaf(b bool) *Node { return New(Bool(b)) }

// RefLeaf returns a reference leaf pointing at the named tree.
func RefLeaf(name Name) *Node { return New(Ref{Name: name}) }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsRef reports whether the node is a reference leaf.
func (n *Node) IsRef() bool {
	_, ok := n.Label.(Ref)
	return ok
}

// RefName returns the referenced name if the node is a reference leaf.
func (n *Node) RefName() (Name, bool) {
	r, ok := n.Label.(Ref)
	if !ok {
		return Name{}, false
	}
	return r.Name, true
}

// Add appends children and returns the node, for fluent construction.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Label: n.Label}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Equal reports deep structural equality of two trees (labels and
// child order both significant, references compared by name).
func (n *Node) Equal(o *Node) bool {
	if n == nil || o == nil {
		return n == o
	}
	if !n.Label.Equal(o.Label) {
		return false
	}
	if len(n.Children) != len(o.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// CompareNode orders two trees: by label first, then lexicographically
// by children. It provides the total order used by ordered grouping
// over subtree-valued criteria.
func CompareNode(a, b *Node) int {
	switch {
	case a == nil && b == nil:
		return 0
	case a == nil:
		return -1
	case b == nil:
		return 1
	}
	if c := Compare(a.Label, b.Label); c != 0 {
		return c
	}
	for i := 0; i < len(a.Children) && i < len(b.Children); i++ {
		if c := CompareNode(a.Children[i], b.Children[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a.Children) < len(b.Children):
		return -1
	case len(a.Children) > len(b.Children):
		return 1
	}
	return 0
}

// Size returns the number of nodes in the subtree.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Walk calls fn for every node in preorder. If fn returns false the
// children of that node are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if n == nil {
		return
	}
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Refs returns the names referenced anywhere in the subtree, in
// preorder, duplicates included.
func (n *Node) Refs() []Name {
	var out []Name
	n.Walk(func(m *Node) bool {
		if name, ok := m.RefName(); ok {
			out = append(out, name)
		}
		return true
	})
	return out
}

// Key returns a canonical string encoding of the subtree. Two trees
// have equal keys exactly when Equal reports true. It is used for
// duplicate elimination in grouping.
func (n *Node) Key() string {
	var b strings.Builder
	n.writeKey(&b)
	return b.String()
}

func (n *Node) writeKey(b *strings.Builder) {
	if n == nil {
		b.WriteString("·")
		return
	}
	b.WriteString(n.Label.Kind().String())
	b.WriteByte(':')
	b.WriteString(n.Label.Display())
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			c.writeKey(b)
		}
		b.WriteByte(')')
	}
}

// String renders the tree in the paper's concrete syntax:
//
//	label < child1, child2, ... >
//
// with brackets omitted for leaves.
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	if n == nil {
		b.WriteString("<nil>")
		return
	}
	b.WriteString(n.Label.Display())
	if len(n.Children) == 0 {
		return
	}
	b.WriteString(" < ")
	for i, c := range n.Children {
		if i > 0 {
			b.WriteString(", ")
		}
		c.write(b)
	}
	b.WriteString(" >")
}

// Indent renders the tree one node per line with two-space
// indentation, which is easier to read for large trees.
func (n *Node) Indent() string {
	var b strings.Builder
	n.writeIndent(&b, 0)
	return b.String()
}

func (n *Node) writeIndent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	if n == nil {
		b.WriteString("<nil>\n")
		return
	}
	b.WriteString(n.Label.Display())
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.writeIndent(b, depth+1)
	}
}

// Dot renders the subtree in Graphviz DOT syntax. Names the root
// cluster with title when non-empty.
func Dot(roots []StoreEntry, title string) string {
	var b strings.Builder
	b.WriteString("digraph yat {\n  node [shape=box, fontname=\"monospace\"];\n")
	if title != "" {
		fmt.Fprintf(&b, "  label=%q;\n", title)
	}
	id := 0
	var emit func(n *Node) int
	emit = func(n *Node) int {
		my := id
		id++
		fmt.Fprintf(&b, "  n%d [label=%q];\n", my, n.Label.Display())
		for _, c := range n.Children {
			child := emit(c)
			fmt.Fprintf(&b, "  n%d -> n%d;\n", my, child)
		}
		return my
	}
	for _, e := range roots {
		root := id
		id++
		fmt.Fprintf(&b, "  n%d [label=%q, shape=plaintext];\n", root, e.Name.String()+":")
		child := emit(e.Tree)
		fmt.Fprintf(&b, "  n%d -> n%d [style=dotted];\n", root, child)
	}
	b.WriteString("}\n")
	return b.String()
}
