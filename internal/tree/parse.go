package tree

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse reads one ground tree in concrete syntax:
//
//	tree  := value [ '<' tree (',' tree)* '>' ]
//	value := symbol | "string" | int | float | true | false | '&' name
//	name  := symbol [ '(' value (',' value)* ')' ]
//
// Example: class < supplier < name < "VW center" > > >
// The paper's arrow notation `a -> b` is accepted as sugar for a
// single-child bracket: `a < b >`.
func Parse(input string) (*Node, error) {
	p := &groundParser{src: input}
	p.next()
	n, err := p.parseTree()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != gtEOF {
		return nil, p.errorf("unexpected trailing input %q", p.tok.text)
	}
	return n, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(input string) *Node {
	n, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return n
}

// ParseStore reads a sequence of named trees:
//
//	entry := name ':' tree
//
// separated by whitespace. Example:
//
//	b1: brochure < number < 1 >, title < "Golf" > >
//	s1: class < supplier >
func ParseStore(input string) (*Store, error) {
	p := &groundParser{src: input}
	p.next()
	store := NewStore()
	for p.tok.kind != gtEOF {
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		if err := p.expect(gtColon); err != nil {
			return nil, err
		}
		t, err := p.parseTree()
		if err != nil {
			return nil, err
		}
		store.Put(name, t)
	}
	return store, nil
}

// ParseName reads one name in concrete syntax — a plain symbol or a
// Skolem invocation `functor(arg, ...)` whose arguments may be any
// value, tree-shaped values included. It is the inverse of
// Name.String(): the wire layer uses it to reconstruct answer
// identities from their display form.
func ParseName(input string) (Name, error) {
	p := &groundParser{src: input}
	p.next()
	n, err := p.parseName()
	if err != nil {
		return Name{}, err
	}
	if p.tok.kind != gtEOF {
		return Name{}, p.errorf("unexpected trailing input %q", p.tok.text)
	}
	return n, nil
}

// ParseValue reads one value in concrete syntax, the inverse of
// Value.Display(): scalars parse as themselves, `&name` as a Ref, and
// bracketed tree syntax as a TreeVal. A leaf tree is indistinguishable
// from its label value in display form, so it parses as the bare
// value — which displays identically, keeping the round trip
// byte-stable.
func ParseValue(input string) (Value, error) {
	p := &groundParser{src: input}
	p.next()
	v, err := p.parseValueOrTree()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != gtEOF {
		return nil, p.errorf("unexpected trailing input %q", p.tok.text)
	}
	return v, nil
}

// FormatStore renders a store in the syntax accepted by ParseStore.
func FormatStore(s *Store) string {
	var b strings.Builder
	for _, e := range s.Entries() {
		b.WriteString(e.Name.String())
		b.WriteString(": ")
		b.WriteString(e.Tree.String())
		b.WriteByte('\n')
	}
	return b.String()
}

type gtKind uint8

const (
	gtEOF gtKind = iota
	gtSymbol
	gtString
	gtInt
	gtFloat
	gtLAngle
	gtRAngle
	gtLParen
	gtRParen
	gtComma
	gtColon
	gtAmp
	gtArrow
)

type gtToken struct {
	kind gtKind
	text string
	pos  int
}

type groundParser struct {
	src string
	off int
	tok gtToken
}

func (p *groundParser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("tree: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

func (p *groundParser) next() {
	for p.off < len(p.src) {
		r, w := utf8.DecodeRuneInString(p.src[p.off:])
		if !unicode.IsSpace(r) {
			break
		}
		p.off += w
	}
	start := p.off
	if p.off >= len(p.src) {
		p.tok = gtToken{kind: gtEOF, pos: start}
		return
	}
	r, w := utf8.DecodeRuneInString(p.src[p.off:])
	switch {
	case r == '<':
		p.off += w
		p.tok = gtToken{kind: gtLAngle, text: "<", pos: start}
	case r == '>':
		p.off += w
		p.tok = gtToken{kind: gtRAngle, text: ">", pos: start}
	case r == '(':
		p.off += w
		p.tok = gtToken{kind: gtLParen, text: "(", pos: start}
	case r == ')':
		p.off += w
		p.tok = gtToken{kind: gtRParen, text: ")", pos: start}
	case r == ',':
		p.off += w
		p.tok = gtToken{kind: gtComma, text: ",", pos: start}
	case r == ':':
		p.off += w
		p.tok = gtToken{kind: gtColon, text: ":", pos: start}
	case r == '&':
		p.off += w
		p.tok = gtToken{kind: gtAmp, text: "&", pos: start}
	case r == '-' && strings.HasPrefix(p.src[p.off:], "->"):
		p.off += 2
		p.tok = gtToken{kind: gtArrow, text: "->", pos: start}
	case r == '"':
		p.off += w
		for p.off < len(p.src) {
			c := p.src[p.off]
			if c == '\\' {
				p.off += 2
				continue
			}
			if c == '"' {
				p.off++
				break
			}
			p.off++
		}
		p.tok = gtToken{kind: gtString, text: p.src[start:p.off], pos: start}
	case r == '-' || r == '+' || unicode.IsDigit(r):
		p.off += w
		isFloat := false
		for p.off < len(p.src) {
			c := p.src[p.off]
			if c == '.' || c == 'e' || c == 'E' {
				isFloat = true
				p.off++
				if p.off < len(p.src) && (p.src[p.off] == '+' || p.src[p.off] == '-') {
					p.off++
				}
				continue
			}
			if c >= '0' && c <= '9' {
				p.off++
				continue
			}
			break
		}
		kind := gtInt
		if isFloat {
			kind = gtFloat
		}
		p.tok = gtToken{kind: kind, text: p.src[start:p.off], pos: start}
	case unicode.IsLetter(r) || r == '_':
		p.off += w
		for p.off < len(p.src) {
			r, w := utf8.DecodeRuneInString(p.src[p.off:])
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				p.off += w
				continue
			}
			break
		}
		p.tok = gtToken{kind: gtSymbol, text: p.src[start:p.off], pos: start}
	default:
		p.tok = gtToken{kind: gtEOF, text: string(r), pos: start}
		p.off += w
	}
}

func (p *groundParser) expect(k gtKind) error {
	if p.tok.kind != k {
		return p.errorf("expected token kind %d, found %q", k, p.tok.text)
	}
	p.next()
	return nil
}

func (p *groundParser) parseValue() (Value, error) {
	switch p.tok.kind {
	case gtSymbol:
		text := p.tok.text
		p.next()
		switch text {
		case "true":
			return Bool(true), nil
		case "false":
			return Bool(false), nil
		}
		return Symbol(text), nil
	case gtString:
		s, err := strconv.Unquote(p.tok.text)
		if err != nil {
			return nil, p.errorf("bad string literal %s: %v", p.tok.text, err)
		}
		p.next()
		return String(s), nil
	case gtInt:
		i, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %s: %v", p.tok.text, err)
		}
		p.next()
		return Int(i), nil
	case gtFloat:
		f, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad float %s: %v", p.tok.text, err)
		}
		p.next()
		return Float(f), nil
	case gtAmp:
		p.next()
		name, err := p.parseName()
		if err != nil {
			return nil, err
		}
		return Ref{Name: name}, nil
	default:
		return nil, p.errorf("expected value, found %q", p.tok.text)
	}
}

func (p *groundParser) parseName() (Name, error) {
	if p.tok.kind != gtSymbol {
		return Name{}, p.errorf("expected name, found %q", p.tok.text)
	}
	functor := p.tok.text
	p.next()
	if p.tok.kind != gtLParen {
		return PlainName(functor), nil
	}
	p.next()
	var args []Value
	for {
		// Skolem arguments may be tree-shaped (a rule can mint
		// identities over whole subtrees), so each argument position
		// accepts full tree syntax, not just scalar values.
		v, err := p.parseValueOrTree()
		if err != nil {
			return Name{}, err
		}
		args = append(args, v)
		if p.tok.kind == gtComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(gtRParen); err != nil {
		return Name{}, err
	}
	return SkolemName(functor, args...), nil
}

// parseValueOrTree reads a value that may carry tree structure: a
// bare value when no children follow, else the whole subtree wrapped
// as a TreeVal. The leaf/value ambiguity is resolved toward the bare
// value, whose display form is identical.
func (p *groundParser) parseValueOrTree() (Value, error) {
	n, err := p.parseTree()
	if err != nil {
		return nil, err
	}
	if len(n.Children) == 0 {
		return n.Label, nil
	}
	return TreeVal{Root: n}, nil
}

func (p *groundParser) parseTree() (*Node, error) {
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	n := New(v)
	switch p.tok.kind {
	case gtLAngle:
		p.next()
		for {
			c, err := p.parseTree()
			if err != nil {
				return nil, err
			}
			n.Add(c)
			if p.tok.kind == gtComma {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(gtRAngle); err != nil {
			return nil, err
		}
	case gtArrow:
		// `a -> b` sugar: single child.
		p.next()
		c, err := p.parseTree()
		if err != nil {
			return nil, err
		}
		n.Add(c)
	}
	return n, nil
}
