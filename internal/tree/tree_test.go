package tree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		disp string
	}{
		{Symbol("class"), KindSymbol, "class"},
		{String("Golf"), KindString, `"Golf"`},
		{Int(1995), KindInt, "1995"},
		{Float(1.5), KindFloat, "1.5"},
		{Float(2), KindFloat, "2.0"},
		{Bool(true), KindBool, "true"},
		{Ref{Name: PlainName("s1")}, KindRef, "&s1"},
		{Ref{Name: SkolemName("Psup", String("VW"))}, KindRef, `&Psup("VW")`},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.Display() != c.disp {
			t.Errorf("%v: display = %q, want %q", c.v, c.v.Display(), c.disp)
		}
		if !c.v.Equal(c.v) {
			t.Errorf("%v not Equal to itself", c.v)
		}
	}
}

func TestValueEqualCrossKind(t *testing.T) {
	vals := []Value{Symbol("x"), String("x"), Int(1), Float(1), Bool(true)}
	for i, a := range vals {
		for j, b := range vals {
			if (i == j) != a.Equal(b) {
				t.Errorf("Equal(%v, %v) = %v, want %v", a, b, a.Equal(b), i == j)
			}
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// Mixed numerics compare numerically.
	if Compare(Int(2), Float(3.5)) >= 0 {
		t.Error("Int(2) should sort before Float(3.5)")
	}
	if Compare(Float(10), Int(2)) <= 0 {
		t.Error("Float(10) should sort after Int(2)")
	}
	// Strings order lexicographically.
	if Compare(String("VW center"), String("VW2")) >= 0 {
		t.Error(`"VW center" < "VW2" expected (space < '2')`)
	}
	// Equal values compare 0.
	for _, v := range []Value{Symbol("a"), String("a"), Int(1), Float(1.5), Bool(false)} {
		if Compare(v, v) != 0 {
			t.Errorf("Compare(%v, %v) != 0", v, v)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(String(a), String(b)) == -Compare(String(b), String(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestNameKeyInjective(t *testing.T) {
	names := []Name{
		PlainName("Psup"),
		SkolemName("Psup", String("VW")),
		SkolemName("Psup", Symbol("VW")),
		SkolemName("Psup", String("VW"), Int(1)),
		SkolemName("Pcar", String("VW")),
		SkolemName("Psup", Int(1)),
		SkolemName("Psup", Float(1)),
	}
	seen := map[string]Name{}
	for _, n := range names {
		if prev, ok := seen[n.Key()]; ok {
			t.Errorf("key collision between %v and %v: %q", prev, n, n.Key())
		}
		seen[n.Key()] = n
	}
}

func TestNameString(t *testing.T) {
	n := SkolemName("Psup", String("VW center"), Int(3))
	if got, want := n.String(), `Psup("VW center", 3)`; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if PlainName("b1").String() != "b1" {
		t.Errorf("plain name String wrong")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	a := Sym("a")
	b := Sym("b")
	if replaced := s.Put(PlainName("x"), a); replaced {
		t.Error("first Put reported replaced")
	}
	if replaced := s.Put(PlainName("x"), b); !replaced {
		t.Error("second Put did not report replaced")
	}
	got, ok := s.Get(PlainName("x"))
	if !ok || got != b {
		t.Error("Get did not return replacement value")
	}
	if !s.Has(PlainName("x")) || s.Has(PlainName("y")) {
		t.Error("Has wrong")
	}
	s.Put(PlainName("y"), a)
	s.Put(PlainName("z"), a)
	s.Delete(PlainName("y"))
	if s.Has(PlainName("y")) {
		t.Error("Delete did not remove")
	}
	// Index map must stay consistent after delete.
	if got, ok := s.Get(PlainName("z")); !ok || got != a {
		t.Error("Get(z) broken after Delete(y)")
	}
	names := s.Names()
	if len(names) != 2 || names[0].Functor != "x" || names[1].Functor != "z" {
		t.Errorf("Names order wrong: %v", names)
	}
}

func TestStoreInsertionOrderAndSorted(t *testing.T) {
	s := NewStore()
	s.Put(PlainName("zz"), Sym("a"))
	s.Put(PlainName("aa"), Sym("b"))
	ents := s.Entries()
	if ents[0].Name.Functor != "zz" {
		t.Error("Entries should preserve insertion order")
	}
	sorted := s.SortedEntries()
	if sorted[0].Name.Functor != "aa" {
		t.Error("SortedEntries should sort by key")
	}
	// Sorting must not disturb the original.
	if s.Entries()[0].Name.Functor != "zz" {
		t.Error("SortedEntries mutated the store")
	}
}

func TestStoreClone(t *testing.T) {
	s := NewStore()
	s.Put(PlainName("x"), Sym("root", Str("leaf")))
	c := s.Clone()
	orig, _ := s.Get(PlainName("x"))
	copy, _ := c.Get(PlainName("x"))
	if !orig.Equal(copy) {
		t.Fatal("clone not equal")
	}
	copy.Children[0].Label = String("changed")
	if orig.Equal(copy) {
		t.Fatal("clone shares structure with original")
	}
}

func TestNodeConstruction(t *testing.T) {
	n := Sym("brochure",
		Sym("number", IntLeaf(1)),
		Sym("title", Str("Golf")),
	)
	if n.Size() != 5 {
		t.Errorf("Size = %d, want 5", n.Size())
	}
	if n.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", n.Depth())
	}
	if n.IsLeaf() {
		t.Error("root is not a leaf")
	}
	if !n.Children[0].Children[0].IsLeaf() {
		t.Error("number child should be leaf")
	}
}

func TestNodeEqualAndClone(t *testing.T) {
	a := Sym("car", Sym("name", Str("Golf")), Sym("year", IntLeaf(1995)))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Children[1].Children[0].Label = Int(1996)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	// Order matters.
	c := Sym("car", Sym("year", IntLeaf(1995)), Sym("name", Str("Golf")))
	if a.Equal(c) {
		t.Fatal("children order should be significant")
	}
}

func TestNodeKeyMatchesEqual(t *testing.T) {
	trees := []*Node{
		Sym("a"),
		Sym("a", Sym("b")),
		Sym("a", Sym("b"), Sym("c")),
		Sym("a", Sym("b", Sym("c"))),
		Str("a"),
		Sym("a", Str("b")),
		RefLeaf(PlainName("a")),
	}
	for i, x := range trees {
		for j, y := range trees {
			if (x.Key() == y.Key()) != x.Equal(y) {
				t.Errorf("Key/Equal disagree for trees %d, %d", i, j)
			}
		}
	}
}

func TestNodeKeyDistinguishesNesting(t *testing.T) {
	// a<b<c>> vs a<b,c> — same node multiset, different shape.
	x := Sym("a", Sym("b", Sym("c")))
	y := Sym("a", Sym("b"), Sym("c"))
	if x.Key() == y.Key() {
		t.Error("keys should differ for different nesting")
	}
}

func TestWalkPreorderAndPrune(t *testing.T) {
	n := Sym("r", Sym("a", Sym("a1")), Sym("b"))
	var seen []string
	n.Walk(func(m *Node) bool {
		seen = append(seen, m.Label.Display())
		return m.Label.Display() != "a" // prune below a
	})
	want := []string{"r", "a", "b"}
	if !reflect.DeepEqual(seen, want) {
		t.Errorf("walk order = %v, want %v", seen, want)
	}
}

func TestRefs(t *testing.T) {
	n := Sym("set",
		RefLeaf(SkolemName("Psup", String("VW"))),
		Sym("mid", RefLeaf(PlainName("s2"))),
		RefLeaf(SkolemName("Psup", String("VW"))),
	)
	refs := n.Refs()
	if len(refs) != 3 {
		t.Fatalf("Refs len = %d, want 3", len(refs))
	}
	if refs[1].Functor != "s2" {
		t.Errorf("Refs order wrong: %v", refs)
	}
}

func TestStringRendering(t *testing.T) {
	n := Sym("class", Sym("supplier", Sym("name", Str("VW center"))))
	want := `class < supplier < name < "VW center" > > >`
	if n.String() != want {
		t.Errorf("String = %q, want %q", n.String(), want)
	}
	if got := Sym("x").String(); got != "x" {
		t.Errorf("leaf String = %q", got)
	}
}

func TestIndentRendering(t *testing.T) {
	n := Sym("a", Sym("b", Str("c")))
	got := n.Indent()
	want := "a\n  b\n    \"c\"\n"
	if got != want {
		t.Errorf("Indent = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		`class < supplier < name < "VW center" >, city < "Paris" >, zip < 75005 > > >`,
		`x`,
		`brochure < number < 1 >, title < "Golf" >, model < 1995 > >`,
		`set < &Psup("VW center"), &Psup("VW2") >`,
		`m < row < 1.5, -2 >, flag < true >, other < false > >`,
	}
	for _, in := range inputs {
		n, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		again, err := Parse(n.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", in, n.String(), err)
		}
		if !n.Equal(again) {
			t.Errorf("round trip changed tree: %q → %q", in, again.String())
		}
	}
}

func TestParseArrowSugar(t *testing.T) {
	a, err := Parse(`class -> supplier -> name -> "VW"`)
	if err != nil {
		t.Fatal(err)
	}
	b := MustParse(`class < supplier < name < "VW" > > >`)
	if !a.Equal(b) {
		t.Errorf("arrow sugar mismatch: %s vs %s", a, b)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`a <`,
		`a < b`,
		`a < b, >`,
		`a > b`,
		`&`,
		`"unterminated`,
		`a < b > trailing`,
		`a(1`, // name syntax only valid after &
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseStore(t *testing.T) {
	src := `
		b1: brochure < number < 1 >, title < "Golf" > >
		s1: class < supplier >
		Psup("VW"): class < supplier < name < "VW" > > >
	`
	s, err := ParseStore(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if _, ok := s.Get(SkolemName("Psup", String("VW"))); !ok {
		t.Error("skolem-named entry not found")
	}
	// Round trip through FormatStore.
	s2, err := ParseStore(FormatStore(s))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Entries() {
		other, ok := s2.Get(e.Name)
		if !ok || !other.Equal(e.Tree) {
			t.Errorf("entry %v lost in round trip", e.Name)
		}
	}
}

func TestParseNumbers(t *testing.T) {
	n := MustParse(`nums < -5, 3.25, 1e3, -2.5e-2 >`)
	want := []Value{Int(-5), Float(3.25), Float(1000), Float(-0.025)}
	for i, w := range want {
		if !n.Children[i].Label.Equal(w) {
			t.Errorf("child %d = %v, want %v", i, n.Children[i].Label, w)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	n := MustParse(`s < "line\nbreak \"quoted\"" >`)
	got := n.Children[0].Label.(String)
	if string(got) != "line\nbreak \"quoted\"" {
		t.Errorf("escape handling wrong: %q", string(got))
	}
}

// randomTree builds a pseudo-random tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	labels := []Value{
		Symbol("a"), Symbol("b"), Symbol("class"), String("x"),
		String("VW center"), Int(int64(r.Intn(100))), Float(r.Float64()),
		Bool(r.Intn(2) == 0),
	}
	n := New(labels[r.Intn(len(labels))])
	if depth > 0 {
		for i := 0; i < r.Intn(4); i++ {
			n.Add(randomTree(r, depth-1))
		}
	}
	return n
}

func TestPropertyParsePrintRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := randomTree(r, 4)
		out, err := Parse(n.String())
		if err != nil {
			t.Fatalf("iteration %d: parse(%q): %v", i, n.String(), err)
		}
		if !n.Equal(out) {
			t.Fatalf("iteration %d: round trip changed %q into %q", i, n.String(), out.String())
		}
	}
}

func TestPropertyCloneEqualAndIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := randomTree(r, 4)
		c := n.Clone()
		if !n.Equal(c) {
			t.Fatal("clone not equal")
		}
		if n.Key() != c.Key() {
			t.Fatal("clone key mismatch")
		}
	}
}

func TestPropertyCompareNodeTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var trees []*Node
	for i := 0; i < 30; i++ {
		trees = append(trees, randomTree(r, 3))
	}
	for _, a := range trees {
		if CompareNode(a, a) != 0 {
			t.Fatal("CompareNode(a,a) != 0")
		}
		for _, b := range trees {
			if CompareNode(a, b) != -CompareNode(b, a) {
				t.Fatalf("antisymmetry violated for %s / %s", a, b)
			}
			if (CompareNode(a, b) == 0) != a.Equal(b) {
				t.Fatalf("Compare==0 vs Equal disagree for %s / %s", a, b)
			}
		}
	}
}

func TestDotOutput(t *testing.T) {
	s := NewStore()
	s.Put(PlainName("b1"), Sym("brochure", Sym("title", Str("Golf"))))
	dot := Dot(s.Entries(), "demo")
	for _, frag := range []string{"digraph yat", `"brochure"`, `"title"`, `"\"Golf\""`, "b1:"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("dot output missing %q:\n%s", frag, dot)
		}
	}
}

func TestAtomString(t *testing.T) {
	if AtomString(String("Golf")) != "Golf" {
		t.Error("String atom should not be quoted")
	}
	if AtomString(Int(5)) != "5" {
		t.Error("Int atom display")
	}
}

func TestIsAtom(t *testing.T) {
	if IsAtom(Symbol("x")) || IsAtom(Ref{Name: PlainName("a")}) {
		t.Error("symbols/refs are not atoms")
	}
	for _, v := range []Value{String("s"), Int(1), Float(1), Bool(true)} {
		if !IsAtom(v) {
			t.Errorf("%v should be an atom", v)
		}
	}
}

func TestEqualValuesCrossKindNumeric(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Float(1), true},
		{Float(2.5), Float(2.5), true},
		{Int(1), Int(1), true},
		{Int(1), Float(1.5), false},
		{Int(1), String("1"), false},
		{Symbol("a"), Symbol("a"), true},
		{Bool(true), Int(1), false},
	}
	for _, c := range cases {
		if got := EqualValues(c.a, c.b); got != c.want {
			t.Errorf("EqualValues(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := EqualValues(c.b, c.a); got != c.want {
			t.Errorf("EqualValues(%v, %v) = %v (asymmetric)", c.b, c.a, got)
		}
	}
}
