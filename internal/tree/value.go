// Package tree implements the ground layer of the YAT data model:
// named, ordered trees whose nodes are labeled with constants, and
// whose leaves may reference other named trees.
//
// A ground YAT datum is a Node. Nodes carry a Value label (a symbol
// such as `class` or `car`, or an atom such as "Golf" or 1995) and an
// ordered list of children. Sharing and cycles are expressed with Ref
// labels that name another tree held in a Store, mirroring the `&name`
// notation of the paper.
package tree

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the concrete type behind a Value. Go has no sum
// types, so every Value implementation reports its Kind and the
// matching accessor on the concrete type carries the payload.
type Kind uint8

// The kinds of node labels.
const (
	KindSymbol Kind = iota // bare identifier: class, car, suppliers ...
	KindString             // quoted text atom: "Golf"
	KindInt                // integer atom: 1995
	KindFloat              // floating point atom: 3.14
	KindBool               // boolean atom: true / false
	KindRef                // reference to a named tree: &s1
	KindTree               // a whole subtree used as a value (Skolem arguments)
)

// String returns the kind name, for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindSymbol:
		return "symbol"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindRef:
		return "ref"
	case KindTree:
		return "tree"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a node label. Implementations are Symbol, String, Int,
// Float, Bool and Ref. Values are immutable.
type Value interface {
	// Kind reports which concrete label this is.
	Kind() Kind
	// Display returns the label in YAT concrete syntax (strings are
	// quoted, symbols are bare, references are prefixed with &).
	Display() string
	// Equal reports whether the receiver and v are the same label.
	Equal(v Value) bool
}

// Symbol is a bare identifier label such as `class` or `supplier`.
type Symbol string

// String is a text atom label such as "Golf".
type String string

// Int is an integer atom label such as 1995.
type Int int64

// Float is a floating point atom label.
type Float float64

// Bool is a boolean atom label.
type Bool bool

// Kind implements Value.
func (Symbol) Kind() Kind { return KindSymbol }

// Kind implements Value.
func (String) Kind() Kind { return KindString }

// Kind implements Value.
func (Int) Kind() Kind { return KindInt }

// Kind implements Value.
func (Float) Kind() Kind { return KindFloat }

// Kind implements Value.
func (Bool) Kind() Kind { return KindBool }

// Display implements Value.
func (s Symbol) Display() string { return string(s) }

// Display implements Value. The text is quoted Go-style so it can be
// re-parsed losslessly.
func (s String) Display() string { return strconv.Quote(string(s)) }

// Display implements Value.
func (i Int) Display() string { return strconv.FormatInt(int64(i), 10) }

// Display implements Value.
func (f Float) Display() string {
	s := strconv.FormatFloat(float64(f), 'g', -1, 64)
	// Guarantee a float lexeme (distinguishable from Int on re-parse).
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

// Display implements Value.
func (b Bool) Display() string { return strconv.FormatBool(bool(b)) }

// Equal implements Value.
func (s Symbol) Equal(v Value) bool { o, ok := v.(Symbol); return ok && o == s }

// Equal implements Value.
func (s String) Equal(v Value) bool { o, ok := v.(String); return ok && o == s }

// Equal implements Value.
func (i Int) Equal(v Value) bool { o, ok := v.(Int); return ok && o == i }

// Equal implements Value.
func (f Float) Equal(v Value) bool {
	o, ok := v.(Float)
	if !ok {
		return false
	}
	if math.IsNaN(float64(f)) && math.IsNaN(float64(o)) {
		return true
	}
	return o == f
}

// Equal implements Value.
func (b Bool) Equal(v Value) bool { o, ok := v.(Bool); return ok && o == b }

// Ref is a reference label naming another tree in a Store. It mirrors
// the `&name` leaves of the paper and is how sharing and cyclic
// structures are represented.
type Ref struct {
	Name Name
}

// Kind implements Value.
func (Ref) Kind() Kind { return KindRef }

// Display implements Value.
func (r Ref) Display() string { return "&" + r.Name.String() }

// Equal implements Value.
func (r Ref) Equal(v Value) bool {
	o, ok := v.(Ref)
	return ok && o.Name.Equal(r.Name)
}

// TreeVal wraps a whole subtree as a Value. It is how pattern
// variables bound to subtrees travel through Skolem arguments: the
// safe-recursive programs of the paper (Web3–Web5) invoke a Skolem
// functor on a subtree of the input.
type TreeVal struct {
	Root *Node
}

// Kind implements Value.
func (TreeVal) Kind() Kind { return KindTree }

// Display implements Value. The rendering is the concrete tree syntax,
// which is parseable and therefore injective up to tree equality.
func (t TreeVal) Display() string { return t.Root.String() }

// Equal implements Value (structural tree equality).
func (t TreeVal) Equal(v Value) bool {
	o, ok := v.(TreeVal)
	return ok && t.Root.Equal(o.Root)
}

// IsAtom reports whether v is an atomic data constant (string, int,
// float or bool) as opposed to a symbol or reference.
func IsAtom(v Value) bool {
	switch v.Kind() {
	case KindString, KindInt, KindFloat, KindBool:
		return true
	}
	return false
}

// Compare orders two values. The order is total: first by kind
// (symbol < string < int < float < bool < ref), then within a kind by
// natural order. Int and Float compare numerically against each other
// so that ordering criteria over mixed numeric data behave sensibly.
func Compare(a, b Value) int {
	an, aok := numeric(a)
	bn, bok := numeric(b)
	if aok && bok {
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		}
		// Equal numerics: fall through to kind tie-break so that
		// Int(1) and Float(1.0) still have a deterministic order.
	}
	if a.Kind() != b.Kind() {
		if a.Kind() < b.Kind() {
			return -1
		}
		return 1
	}
	switch av := a.(type) {
	case Symbol:
		return strings.Compare(string(av), string(b.(Symbol)))
	case String:
		return strings.Compare(string(av), string(b.(String)))
	case Int:
		bv := b.(Int)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case Float:
		bv := b.(Float)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case Bool:
		bv := b.(Bool)
		switch {
		case !bool(av) && bool(bv):
			return -1
		case bool(av) && !bool(bv):
			return 1
		}
		return 0
	case Ref:
		return strings.Compare(av.Name.Key(), b.(Ref).Name.Key())
	case TreeVal:
		return CompareNode(av.Root, b.(TreeVal).Root)
	}
	return 0
}

func numeric(v Value) (float64, bool) {
	switch n := v.(type) {
	case Int:
		return float64(n), true
	case Float:
		return float64(n), true
	}
	return 0, false
}

// EqualValues reports semantic equality: structural label equality,
// extended with cross-kind numeric equality (Int 1 equals Float 1.0).
// Comparison predicates use this; Compare deliberately tie-breaks
// equal numerics of different kinds so sorting stays total and
// deterministic.
func EqualValues(a, b Value) bool {
	if a.Equal(b) {
		return true
	}
	an, aok := numeric(a)
	bn, bok := numeric(b)
	return aok && bok && an == bn
}

// AtomString extracts the text of a String value, or the display form
// of any other atom. It is the conversion used by external functions
// such as data_to_string.
func AtomString(v Value) string {
	if s, ok := v.(String); ok {
		return string(s)
	}
	return v.Display()
}
