// Package typing implements the optional type system of YATL (§3.5):
// inference of a program's signature M_IN ↦ M_OUT from its rules,
// and conformance checks of the inferred models against more general
// models through the instantiation relation.
//
// Typing is "in no way constraining": programs run without it; these
// checks are invoked on demand by the user, by the composition
// machinery (§4.3 requires the output model of the first program to
// instantiate the input model of the second) and by the library.
package typing

import (
	"fmt"
	"sort"
	"strings"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// Signature is the couple of input/output models of a conversion
// program, noted M_IN ↦ M_OUT in the paper.
type Signature struct {
	In  *pattern.Model
	Out *pattern.Model
}

// String renders the signature.
func (s *Signature) String() string {
	return "IN:\n" + indent(s.In.String()) + "OUT:\n" + indent(s.Out.String())
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}

// Infer computes the signature of a program by considering (i) its
// input and output patterns, (ii) predicate and function signatures
// and (iii) variable domains (§3.5). reg supplies the function
// signatures; nil uses the default registry.
func Infer(prog *yatl.Program, reg *engine.Registry) (*Signature, error) {
	if reg == nil {
		reg = engine.NewRegistry()
	}
	sig := &Signature{In: pattern.NewModel(), Out: pattern.NewModel()}

	inBranches := map[string][]*pattern.PTree{}
	var inOrder []string
	outBranches := map[string][]*pattern.PTree{}
	var outOrder []string

	for _, r := range prog.Rules {
		domains, err := ruleDomains(r, reg)
		if err != nil {
			return nil, err
		}
		for _, bp := range r.Body {
			t := applyDomains(bp.Tree.Clone(), domains)
			name := bp.Var
			if _, ok := inBranches[name]; !ok {
				inOrder = append(inOrder, name)
			}
			inBranches[name] = addBranch(inBranches[name], t)
		}
		if r.Exception || r.Head.Tree == nil {
			continue
		}
		t := modelView(applyDomains(r.Head.Tree.Clone(), domains))
		name := r.Head.Functor
		if _, ok := outBranches[name]; !ok {
			outOrder = append(outOrder, name)
		}
		outBranches[name] = addBranch(outBranches[name], t)
	}
	for _, name := range inOrder {
		sig.In.Add(pattern.NewPattern(name, inBranches[name]...))
	}
	for _, name := range outOrder {
		sig.Out.Add(pattern.NewPattern(name, outBranches[name]...))
	}
	// The models declared by the program provide the resolution
	// context for pattern-domain variables and pattern references
	// (e.g. P2 : Ptype in the Web rules): add their patterns to the
	// input model as auxiliary definitions where no inferred pattern
	// claims the name. (Output patterns only reference Skolem
	// functors the program itself defines, so M_OUT needs no such
	// context.)
	for _, decl := range prog.Models {
		for _, p := range decl.Model.Patterns() {
			if !sig.In.Has(p.Name) {
				sig.In.Add(p.Clone())
			}
		}
	}
	return sig, nil
}

// RuleIssue is one rule-level typing problem found by CheckRules.
type RuleIssue struct {
	Rule *yatl.Rule
	Err  error
}

// CheckRules runs the §3.5 domain inference rule by rule and returns
// every failure (incompatible variable domains, unknown external
// functions, arity mismatches) instead of stopping at the first one,
// so the analysis driver can report a positioned diagnostic per rule.
func CheckRules(prog *yatl.Program, reg *engine.Registry) []RuleIssue {
	if reg == nil {
		reg = engine.NewRegistry()
	}
	var out []RuleIssue
	for _, r := range prog.Rules {
		if _, err := ruleDomains(r, reg); err != nil {
			out = append(out, RuleIssue{Rule: r, Err: err})
		}
	}
	return out
}

// addBranch appends a union branch, dropping exact duplicates (the
// same body pattern shared by several rules contributes once).
func addBranch(branches []*pattern.PTree, t *pattern.PTree) []*pattern.PTree {
	for _, b := range branches {
		if b.String() == t.String() {
			return branches
		}
	}
	return append(branches, t)
}

// ruleDomains infers, for every variable of the rule, the domain
// implied by explicit annotations, function signatures and
// predicates. An empty intersection is a type error (e.g. comparing
// a city name with an integer).
func ruleDomains(r *yatl.Rule, reg *engine.Registry) (map[string]pattern.Domain, error) {
	doms := map[string]pattern.Domain{}
	restrict := func(v string, d pattern.Domain) error {
		cur, ok := doms[v]
		if !ok {
			cur = pattern.AnyDomain
		}
		merged, compatible := cur.Intersect(d)
		if !compatible {
			return fmt.Errorf("typing: rule %s: variable %s has incompatible domains %s and %s",
				r.Name, v, cur, d)
		}
		doms[v] = merged
		return nil
	}

	// (iii) explicit variable domains in body and head trees.
	collect := func(t *pattern.PTree) error {
		var err error
		t.Walk(func(pt *pattern.PTree) bool {
			if v, ok := pt.Label.(pattern.Var); ok && !v.Domain.IsAny() {
				if e := restrict(v.Name, v.Domain); e != nil && err == nil {
					err = e
				}
			}
			return true
		})
		return err
	}
	for _, bp := range r.Body {
		if err := collect(bp.Tree); err != nil {
			return nil, err
		}
	}
	if r.Head.Tree != nil {
		if err := collect(r.Head.Tree); err != nil {
			return nil, err
		}
	}

	// (ii) function signatures: argument and result types.
	applyCall := func(name string, args []yatl.Operand, resultVar string) error {
		f, ok := reg.Lookup(name)
		if !ok {
			return fmt.Errorf("typing: rule %s: unknown external function %s", r.Name, name)
		}
		if len(args) != len(f.Params) {
			return fmt.Errorf("typing: rule %s: %s expects %d arguments, got %d",
				r.Name, name, len(f.Params), len(args))
		}
		for i, a := range args {
			if !a.IsVar {
				if !f.Params[i].Accepts(a.Const) {
					return fmt.Errorf("typing: rule %s: %s argument %d: constant %s outside parameter type",
						r.Name, name, i+1, a.Const.Display())
				}
				continue
			}
			if len(f.Params[i].Kinds) > 0 {
				if err := restrict(a.Var, pattern.KindDomain(f.Params[i].Kinds...)); err != nil {
					return err
				}
			}
		}
		if resultVar != "" && len(f.Result.Kinds) > 0 {
			if err := restrict(resultVar, pattern.KindDomain(f.Result.Kinds...)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, l := range r.Lets {
		if err := applyCall(l.Func, l.Args, l.Var); err != nil {
			return nil, err
		}
	}

	// (ii) predicates: a comparison against a constant restricts the
	// variable to the constant's comparison class.
	for _, p := range r.Preds {
		if p.IsCall() {
			if err := applyCall(p.Call, p.Args, ""); err != nil {
				return nil, err
			}
			continue
		}
		if err := restrictByComparison(p.Left, p.Right, restrict); err != nil {
			return nil, err
		}
		if err := restrictByComparison(p.Right, p.Left, restrict); err != nil {
			return nil, err
		}
	}
	return doms, nil
}

func restrictByComparison(v, other yatl.Operand, restrict func(string, pattern.Domain) error) error {
	if !v.IsVar || other.IsVar {
		return nil
	}
	switch other.Const.Kind() {
	case tree.KindInt, tree.KindFloat:
		return restrict(v.Var, pattern.KindDomain(tree.KindInt, tree.KindFloat))
	case tree.KindString:
		return restrict(v.Var, pattern.KindDomain(tree.KindString))
	case tree.KindBool:
		return restrict(v.Var, pattern.KindDomain(tree.KindBool))
	}
	return nil
}

// applyDomains rewrites every variable label with its inferred
// domain.
func applyDomains(t *pattern.PTree, doms map[string]pattern.Domain) *pattern.PTree {
	t.Walk(func(pt *pattern.PTree) bool {
		if v, ok := pt.Label.(pattern.Var); ok {
			if d, found := doms[v.Name]; found {
				pt.Label = pattern.Var{Name: v.Name, Domain: d}
			}
		}
		return true
	})
	return t
}

// modelView turns a head tree into a model pattern tree: Skolem
// arguments are stripped from pattern references (the model speaks of
// patterns, not identities) and the collection-construction edges
// ({} ordered, index) weaken to the model's star indicator.
func modelView(t *pattern.PTree) *pattern.PTree {
	if ref, ok := t.Label.(pattern.PatRef); ok {
		t.Label = pattern.PatRef{Name: ref.Name, Ref: ref.Ref}
	}
	for i := range t.Edges {
		e := &t.Edges[i]
		switch e.Occ {
		case pattern.OccGroup, pattern.OccOrdered, pattern.OccIndex:
			e.Occ = pattern.OccStar
			e.OrderBy = nil
			e.Index = ""
		}
		modelView(e.To)
	}
	return t
}

// AnnotateRule returns a copy of the rule whose head and body trees
// carry the inferred variable domains (explicit annotations ∩
// function signatures ∩ predicate restrictions). The compose package
// matches the second program's bodies against annotated producer
// heads so that pattern-domain checks (P2 : Ptype) see the real
// types.
func AnnotateRule(r *yatl.Rule, reg *engine.Registry) (*yatl.Rule, error) {
	if reg == nil {
		reg = engine.NewRegistry()
	}
	doms, err := ruleDomains(r, reg)
	if err != nil {
		return nil, err
	}
	c := r.Clone()
	if c.Head.Tree != nil {
		applyDomains(c.Head.Tree, doms)
	}
	for i := range c.Body {
		applyDomains(c.Body[i].Tree, doms)
	}
	return c, nil
}

// CheckOutput verifies that the program's inferred output model is an
// instance of the given general model — e.g. "check that a program
// generates car and supplier objects compliant with a given ODMG
// schema or, more generally, with the ODMG model" (§3.5).
func CheckOutput(prog *yatl.Program, reg *engine.Registry, gen *pattern.Model) error {
	sig, err := Infer(prog, reg)
	if err != nil {
		return err
	}
	return pattern.InstanceOf(sig.Out, gen)
}

// CheckInput verifies that the program's inferred input model is an
// instance of the given general model.
func CheckInput(prog *yatl.Program, reg *engine.Registry, gen *pattern.Model) error {
	sig, err := Infer(prog, reg)
	if err != nil {
		return err
	}
	return pattern.InstanceOf(sig.In, gen)
}

// Compatible reports whether prg1 and prg2 can be composed (§4.3):
// the output model of prg1 must be an instance of the input model of
// prg2.
func Compatible(prg1, prg2 *yatl.Program, reg *engine.Registry) error {
	sig1, err := Infer(prg1, reg)
	if err != nil {
		return fmt.Errorf("typing: inferring signature of %s: %w", prg1.Name, err)
	}
	sig2, err := Infer(prg2, reg)
	if err != nil {
		return fmt.Errorf("typing: inferring signature of %s: %w", prg2.Name, err)
	}
	if err := pattern.InstanceOf(sig1.Out, sig2.In); err != nil {
		return fmt.Errorf("typing: %s and %s are not composable: %w", prg1.Name, prg2.Name, err)
	}
	return nil
}

// Coverage reports which patterns of the declared input model are not
// matched by any rule body — data the program would silently ignore
// (the situation the §3.5 exception rule detects at run time).
func Coverage(prog *yatl.Program, declared *pattern.Model) []string {
	sig, err := Infer(prog, engine.NewRegistry())
	if err != nil {
		return []string{fmt.Sprintf("(inference failed: %v)", err)}
	}
	// Only patterns inferred from rule bodies count as coverage:
	// Infer also merges the program's declared models into sig.In as
	// resolution context, and matching a declared pattern against its
	// own declaration would make every in-program model trivially
	// covered.
	bodyVars := map[string]bool{}
	for _, r := range prog.Rules {
		for _, bp := range r.Body {
			bodyVars[bp.Var] = true
		}
	}
	var uncovered []string
	for _, p := range declared.Patterns() {
		matched := false
		for _, q := range sig.In.Patterns() {
			if !bodyVars[q.Name] {
				continue
			}
			for _, branchP := range p.Union {
				for _, branchQ := range q.Union {
					if pattern.TreeInstanceOfLoose(declared, branchP, sig.In, branchQ) {
						matched = true
					}
				}
			}
		}
		if !matched {
			uncovered = append(uncovered, p.Name)
		}
	}
	sort.Strings(uncovered)
	return uncovered
}
