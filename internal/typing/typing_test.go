package typing

import (
	"strings"
	"testing"

	"yat/internal/pattern"
	"yat/internal/tree"
	"yat/internal/yatl"
)

// annotatedSGMLToODMG is the §3.1 program with explicit string
// domains on the PCDATA variables, making the inferred output model
// ODMG-compliant (experiment E12).
const annotatedSGMLToODMG = yatl.AnnotatedSGMLToODMGSource

func TestInferSignatureRule1(t *testing.T) {
	prog := yatl.MustParse("program p\n" + yatl.Rule1Source)
	sig, err := Infer(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One input pattern (Pbr), one output pattern (Psup).
	if sig.In.Len() != 1 || !sig.In.Has("Pbr") {
		t.Errorf("In = %v", sig.In.Names())
	}
	if sig.Out.Len() != 1 || !sig.Out.Has("Psup") {
		t.Errorf("Out = %v", sig.Out.Names())
	}
	// "The type of Add is given by the signature of functions city
	// and zip, that of Year by the > predicate."
	pbr, _ := sig.In.Get("Pbr")
	src := pbr.String()
	if !strings.Contains(src, "Add : string") {
		t.Errorf("Add should be inferred string:\n%s", src)
	}
	if !strings.Contains(src, "Year : int|float") {
		t.Errorf("Year should be inferred numeric:\n%s", src)
	}
	// C and Z in the output take the function result types.
	psup, _ := sig.Out.Get("Psup")
	out := psup.String()
	if !strings.Contains(out, "C : string") || !strings.Contains(out, "Z : int") {
		t.Errorf("output domains wrong:\n%s", out)
	}
}

func TestInferredInputInstanceOfBrochureModel(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	sig, err := Infer(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pattern.InstanceOf(sig.In, pattern.BrochureModel()); err != nil {
		t.Errorf("inferred input should instantiate the brochure model: %v", err)
	}
	if err := pattern.InstanceOf(sig.In, pattern.YatModel()); err != nil {
		t.Errorf("inferred input should instantiate Yat: %v", err)
	}
}

func TestCheckOutputAgainstODMG(t *testing.T) {
	// With PCDATA variables annotated as strings the program
	// provably emits ODMG-compliant objects.
	annotated := yatl.MustParse(annotatedSGMLToODMG)
	if err := CheckOutput(annotated, nil, pattern.ODMGModel()); err != nil {
		t.Errorf("annotated program should type against ODMG: %v", err)
	}
	// Unannotated, the title variable is unrestricted and the check
	// fails — typing is optional but honest.
	plain := yatl.MustParse(yatl.SGMLToODMGSource)
	if err := CheckOutput(plain, nil, pattern.ODMGModel()); err == nil {
		t.Error("unannotated program should not type against ODMG")
	}
}

func TestCheckOutputAgainstCarSchemaFailsOnZip(t *testing.T) {
	// The paper's own example: Rule 1 computes zip as an integer
	// while the Car Schema's Psup declares S3 : string. The checker
	// catches the mismatch.
	annotated := yatl.MustParse(annotatedSGMLToODMG)
	if err := CheckOutput(annotated, nil, pattern.CarSchemaModel()); err == nil {
		t.Error("int zip should not conform to Psup's S3 : string")
	}
}

func TestInferEmptyDomainIsError(t *testing.T) {
	src := `
program p
rule R {
  head F(X) = out -> C
  from X = in -> Y
  where Y > 10
  let C = city(Y)
}
`
	// Y is numeric (predicate) and string (city parameter): empty.
	if _, err := Infer(yatl.MustParse(src), nil); err == nil {
		t.Error("contradictory domains should fail inference")
	}
}

func TestInferUnknownFunction(t *testing.T) {
	src := `
program p
rule R {
  head F(X) = out -> C
  from X = in -> Y
  let C = frobnicate(Y)
}
`
	if _, err := Infer(yatl.MustParse(src), nil); err == nil {
		t.Error("unknown function should fail inference")
	}
}

func TestInferWrongArity(t *testing.T) {
	src := `
program p
rule R {
  head F(X) = out -> C
  from X = in -> Y
  let C = city(Y, Y)
}
`
	if _, err := Infer(yatl.MustParse(src), nil); err == nil {
		t.Error("wrong arity should fail inference")
	}
}

func TestCompatibleComposition(t *testing.T) {
	// SGML → ODMG composes with ODMG → HTML (§4.3): the output of
	// the first instantiates the input of the second.
	first := yatl.MustParse(annotatedSGMLToODMG)
	second := yatl.MustParse(yatl.WebProgramSource)
	if err := Compatible(first, second, nil); err != nil {
		t.Errorf("programs should be composable: %v", err)
	}
	// The reverse composition is not compatible.
	if err := Compatible(second, first, nil); err == nil {
		t.Error("HTML output should not feed the SGML-consuming program")
	}
}

func TestWebProgramSignature(t *testing.T) {
	sig, err := Infer(yatl.MustParse(yatl.WebProgramSource), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Pclass", "Pany", "Ptup", "Pcoll", "Pseq", "Pobj", "Ptype"} {
		if !sig.In.Has(name) {
			t.Errorf("input model missing %s", name)
		}
	}
	for _, name := range []string{"HtmlPage", "HtmlElement"} {
		if !sig.Out.Has(name) {
			t.Errorf("output model missing %s", name)
		}
	}
	// The output model must be a Yat instance (everything is).
	if err := pattern.InstanceOf(sig.Out, pattern.YatModel()); err != nil {
		t.Errorf("Web output should instantiate Yat: %v", err)
	}
	// Web rules 2–6 contribute the HtmlElement branches; Web3 and
	// Web4 share the same head shape (ul of li), so four distinct
	// branches remain.
	elem, _ := sig.Out.Get("HtmlElement")
	if len(elem.Union) != 4 {
		t.Errorf("HtmlElement union = %d branches, want 4", len(elem.Union))
	}
}

func TestModelViewWeakensCollectionEdges(t *testing.T) {
	prog := yatl.MustParse("program p\n" + yatl.Rule4Source)
	sig, err := Infer(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	lst, _ := sig.Out.Get("PsupList")
	s := lst.String()
	if strings.Contains(s, "-[") {
		t.Errorf("ordered edges should weaken to star in the model view: %s", s)
	}
	if !strings.Contains(s, "-*> &Psup") {
		t.Errorf("expected star edge to &Psup: %s", s)
	}
}

func TestCoverage(t *testing.T) {
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	declared := pattern.NewModel(pattern.BrochurePattern(), pattern.NewPattern("Porder",
		pattern.NewSym("order", pattern.One(pattern.NewVar("X", pattern.AnyDomain)))))
	uncovered := Coverage(prog, declared)
	if len(uncovered) != 1 || uncovered[0] != "Porder" {
		t.Errorf("uncovered = %v, want [Porder]", uncovered)
	}
}

func TestSharedBodyPatternDeduplicated(t *testing.T) {
	// Rules 1 and 2 share the Pbr body pattern; the inferred input
	// model should have a single branch for it (not per rule)... the
	// Sup rule's inferred domains differ (Year numeric), so two
	// branches remain; with identical rules the branch is shared.
	src := "program p\n" + yatl.Rule2Source + strings.Replace(yatl.Rule2Source, "rule Car", "rule Car2", 1)
	src = strings.Replace(src, "Pcar(Pbr)", "Pcar2(Pbr)", 1)
	// Keep both rules but give the second a distinct functor to avoid
	// identical outputs.
	prog := yatl.MustParse(src)
	sig, err := Infer(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	pbr, _ := sig.In.Get("Pbr")
	if len(pbr.Union) != 1 {
		t.Errorf("identical body patterns should share one branch, got %d", len(pbr.Union))
	}
}

func TestSignatureString(t *testing.T) {
	sig, err := Infer(yatl.MustParse("program p\n"+yatl.Rule1Source), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := sig.String()
	if !strings.Contains(s, "IN:") || !strings.Contains(s, "OUT:") || !strings.Contains(s, "Psup") {
		t.Errorf("signature rendering: %s", s)
	}
}

func TestPredicateConstantRestriction(t *testing.T) {
	src := `
program p
rule R {
  head F(X) = out < -> A, -> B, -> C >
  from X = in < -> a -> A, -> b -> B, -> c -> C >
  where A > 10
  where B == "x"
  where C != true
}
`
	sig, err := Infer(yatl.MustParse(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := sig.Out.Get("F")
	s := f.String()
	for _, frag := range []string{"A : int|float", "B : string", "C : bool"} {
		if !strings.Contains(s, frag) {
			t.Errorf("missing %q in %s", frag, s)
		}
	}
	_ = tree.Int(0) // keep import
}

func TestAnnotateRule(t *testing.T) {
	prog := yatl.MustParse("program p\n" + yatl.Rule1Source)
	r, _ := prog.Rule("Sup")
	annotated, err := AnnotateRule(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := annotated.String()
	for _, frag := range []string{"Add : string", "Year : int|float", "C : string", "Z : int"} {
		if !strings.Contains(s, frag) {
			t.Errorf("annotated rule missing %q:\n%s", frag, s)
		}
	}
	// The original is untouched.
	if strings.Contains(r.String(), "Add : string") {
		t.Error("AnnotateRule mutated its input")
	}
	// Inference failures propagate.
	bad := yatl.MustParseRule(`rule B {
	  head F(X) = out -> C
	  from X = in -> Y
	  let C = ghostfunc(Y)
	}`)
	if _, err := AnnotateRule(bad, nil); err == nil {
		t.Error("unknown function should fail annotation")
	}
}

func TestInferExceptionRuleContributesInputOnly(t *testing.T) {
	prog := yatl.MustParse("program p\n" + yatl.Rule1Source + yatl.ExceptionRuleSource)
	sig, err := Infer(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.In.Has("Pany") {
		t.Error("exception body missing from input model")
	}
	if sig.Out.Len() != 1 {
		t.Errorf("exception rule should add no output pattern: %v", sig.Out.Names())
	}
}
