// Package workload generates deterministic synthetic data shaped like
// the paper's running example: SGML brochures, the dealer relational
// database, ODMG object stores and matrices. The generators replace
// the OPAL project's proprietary data (see DESIGN.md, substitutions):
// the schemas and DTD are the paper's, only the volume is
// parameterized, so the benchmarks exercise the same code paths at
// any scale.
package workload

import (
	"fmt"
	"strings"

	"yat/internal/relational"
	"yat/internal/tree"
)

// rng is a small deterministic PRNG (xorshift64*), independent of
// math/rand so workloads are stable across Go versions.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *rng) Intn(n int) int { return int(r.next() % uint64(n)) }

var (
	carModels = []string{"Golf", "Polo", "Passat", "Beetle", "Corrado",
		"Vento", "Sharan", "Lupo", "Bora", "Scirocco"}
	cities = []string{"Paris", "Lyon", "Lille", "Nantes", "Rennes",
		"Toulouse", "Nice", "Metz", "Dijon", "Brest"}
	streets = []string{"Bd Lenoir", "Bd Leblanc", "Rue Royale", "Av Foch",
		"Rue des Lilas", "Quai Branly", "Rue de la Paix", "Av Jaures"}
)

// Supplier is one synthetic supplier shared between the SGML and
// relational sources, so the Rule 3 join finds matches.
type Supplier struct {
	SID     int64
	Name    string
	City    string
	Street  string
	Zip     int64
	Tel     string
	Address string // full SGML address: "street, zip city"
}

// Suppliers generates n suppliers.
func Suppliers(n int, seed uint64) []Supplier {
	r := newRNG(seed)
	out := make([]Supplier, n)
	for i := range out {
		city := cities[r.Intn(len(cities))]
		street := streets[r.Intn(len(streets))]
		zip := int64(10000 + r.Intn(89999))
		out[i] = Supplier{
			SID:     int64(i + 1),
			Name:    fmt.Sprintf("Supplier %03d", i+1),
			City:    city,
			Street:  street,
			Zip:     zip,
			Tel:     fmt.Sprintf("01%08d", r.Intn(100000000)),
			Address: fmt.Sprintf("%s, %d %s", street, zip, city),
		}
	}
	return out
}

// Brochure is one synthetic brochure.
type Brochure struct {
	Number    int64
	Title     string
	Year      int64
	Desc      string
	Suppliers []Supplier
}

// Brochures generates n brochures, each citing supsPer suppliers
// drawn from the pool. Roughly one in eight brochures predates 1975
// (exercising Rule 1's predicate).
func Brochures(n, supsPer int, pool []Supplier, seed uint64) []Brochure {
	r := newRNG(seed ^ 0xB10C)
	out := make([]Brochure, n)
	for i := range out {
		year := int64(1976 + r.Intn(22))
		if r.Intn(8) == 0 {
			year = int64(1950 + r.Intn(25))
		}
		b := Brochure{
			Number: int64(i + 1),
			Title:  carModels[r.Intn(len(carModels))],
			Year:   year,
			Desc:   fmt.Sprintf("Edition %d of the dealer brochure", i+1),
		}
		for j := 0; j < supsPer && len(pool) > 0; j++ {
			b.Suppliers = append(b.Suppliers, pool[r.Intn(len(pool))])
		}
		out[i] = b
	}
	return out
}

// SGML renders a brochure as an SGML document conforming to the
// paper's DTD.
func (b Brochure) SGML() string {
	var sb strings.Builder
	sb.WriteString("<brochure>\n")
	fmt.Fprintf(&sb, "  <number>%d</number>\n", b.Number)
	fmt.Fprintf(&sb, "  <title>%s</title>\n", b.Title)
	fmt.Fprintf(&sb, "  <model>%d</model>\n", b.Year)
	fmt.Fprintf(&sb, "  <desc>%s</desc>\n", b.Desc)
	sb.WriteString("  <spplrs>\n")
	for _, s := range b.Suppliers {
		sb.WriteString("    <supplier>\n")
		fmt.Fprintf(&sb, "      <name>%s</name>\n", s.Name)
		fmt.Fprintf(&sb, "      <address>%s</address>\n", s.Address)
		sb.WriteString("    </supplier>\n")
	}
	sb.WriteString("  </spplrs>\n")
	sb.WriteString("</brochure>")
	return sb.String()
}

// Tree converts a brochure directly into its imported YAT form (what
// the SGML wrapper produces with type inference on).
func (b Brochure) Tree() *tree.Node {
	spplrs := tree.Sym("spplrs")
	for _, s := range b.Suppliers {
		spplrs.Add(tree.Sym("supplier",
			tree.Sym("name", tree.Str(s.Name)),
			tree.Sym("address", tree.Str(s.Address))))
	}
	return tree.Sym("brochure",
		tree.Sym("number", tree.IntLeaf(b.Number)),
		tree.Sym("title", tree.Str(b.Title)),
		tree.Sym("model", tree.IntLeaf(b.Year)),
		tree.Sym("desc", tree.Str(b.Desc)),
		spplrs)
}

// BrochureStore imports n brochures over supplier pool size nSup into
// a YAT store named b1..bn.
func BrochureStore(n, supsPer, nSup int, seed uint64) *tree.Store {
	pool := Suppliers(nSup, seed)
	store := tree.NewStore()
	for i, b := range Brochures(n, supsPer, pool, seed) {
		store.Put(tree.PlainName(fmt.Sprintf("b%d", i+1)), b.Tree())
	}
	return store
}

// BrochureDocs renders n brochures as SGML sources named b1..bn.
func BrochureDocs(n, supsPer, nSup int, seed uint64) map[string]string {
	pool := Suppliers(nSup, seed)
	out := map[string]string{}
	for i, b := range Brochures(n, supsPer, pool, seed) {
		out[fmt.Sprintf("b%d", i+1)] = b.SGML()
	}
	return out
}

// DealerDatabase builds the §3.2 relational database over the same
// supplier pool, with one cars row per brochure (so the Rule 3 join
// matches) and a sales fact table.
func DealerDatabase(brochures []Brochure, pool []Supplier, seed uint64) *relational.Database {
	r := newRNG(seed ^ 0xD8)
	supSchema, carSchema, salesSchema := relational.DealerSchemas()
	db := relational.NewDatabase()
	sup := db.MustCreate(supSchema)
	cars := db.MustCreate(carSchema)
	sales := db.MustCreate(salesSchema)
	for _, s := range pool {
		sup.MustInsert(
			relational.IntV(s.SID),
			relational.StrV(s.Name),
			relational.StrV(s.City),
			relational.StrV(s.Street),
			relational.StrV(s.Tel))
	}
	for i, b := range brochures {
		cid := int64(i + 100)
		cars.MustInsert(relational.IntV(cid), relational.IntV(b.Number))
		for _, s := range b.Suppliers {
			sales.MustInsert(
				relational.IntV(s.SID),
				relational.IntV(cid),
				relational.IntV(b.Year),
				relational.IntV(int64(1+r.Intn(500))))
		}
	}
	return db
}

// SelectiveProgram builds a k-rule YATL program over the brochure
// source in which every rule mints an independent Skolem functor
// (Pview1..Pviewk) and no rule feeds another. A query for one view
// slices to exactly one rule, so the program is the worst case for
// full materialization and the best case for demand-driven asks —
// the shape of a mediator serving many narrow client views.
func SelectiveProgram(k int) string {
	var sb strings.Builder
	sb.WriteString("program selective\n")
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&sb, `
rule View%d {
  head Pview%d(SN) = view < -> name -> SN, -> city -> C, -> zip -> Z >
  from Pbr = brochure < -> number -> Num, -> title -> T,
                        -> model -> Year, -> desc -> D,
                        -> spplrs -*> supplier < -> name -> SN,
                                                 -> address -> Add > >
  let C = city(Add)
  let Z = zip(Add)
}
`, i, i)
	}
	return sb.String()
}

// MatrixTree builds an r×c matrix tree (rows r1..rn, columns c1..cm,
// deterministic integer cells) for the Figure 4 transpose benchmark.
func MatrixTree(rows, cols int) *tree.Node {
	m := tree.Sym("mat")
	for i := 1; i <= rows; i++ {
		row := tree.Sym(fmt.Sprintf("r%d", i))
		for j := 1; j <= cols; j++ {
			row.Add(tree.Sym(fmt.Sprintf("c%d", j), tree.IntLeaf(int64(i*1000+j))))
		}
		m.Add(row)
	}
	return m
}

// ODMGStore builds a ground object store of nCars car objects over
// nSup suppliers (string attributes, as the Car Schema declares) for
// the Web-program benchmarks.
func ODMGStore(nCars, nSup, supsPerCar int, seed uint64) *tree.Store {
	r := newRNG(seed ^ 0x0D)
	store := tree.NewStore()
	supNames := make([]tree.Name, nSup)
	pool := Suppliers(nSup, seed)
	for i, s := range pool {
		name := tree.PlainName(fmt.Sprintf("s%d", i+1))
		supNames[i] = name
		store.Put(name, tree.Sym("class",
			tree.Sym("supplier",
				tree.Sym("name", tree.Str(s.Name)),
				tree.Sym("city", tree.Str(s.City)),
				tree.Sym("zip", tree.Str(fmt.Sprintf("%d", s.Zip))))))
	}
	for i := 0; i < nCars; i++ {
		set := tree.Sym("set")
		seen := map[int]bool{}
		for j := 0; j < supsPerCar && nSup > 0; j++ {
			k := r.Intn(nSup)
			if seen[k] {
				continue
			}
			seen[k] = true
			set.Add(tree.RefLeaf(supNames[k]))
		}
		store.Put(tree.PlainName(fmt.Sprintf("c%d", i+1)), tree.Sym("class",
			tree.Sym("car",
				tree.Sym("name", tree.Str(carModels[r.Intn(len(carModels))])),
				tree.Sym("desc", tree.Str(fmt.Sprintf("Car object %d", i+1))),
				tree.Sym("suppliers", set))))
	}
	return store
}

// SplitStore partitions a store round-robin (by sorted entry order)
// into k stores — the shape of one logical input federated across k
// wrapped sources. k < 1 is treated as 1; the parts merge back into
// the original store regardless of k.
func SplitStore(s *tree.Store, k int) []*tree.Store {
	if k < 1 {
		k = 1
	}
	parts := make([]*tree.Store, k)
	for i := range parts {
		parts[i] = tree.NewStore()
	}
	for i, e := range s.Entries() {
		parts[i%k].Put(e.Name, e.Tree)
	}
	return parts
}

// PartitionedProgram builds a k-rule program in which rule i reads its
// own root symbol parti — k independent single-source rule families
// over disjoint data. A refresh that only touches family i's entries
// affects exactly one of the k cached functor groups, which is the
// shape the incremental-refresh benchmark measures: delta propagation
// should patch one group while full re-materialization redoes all k.
func PartitionedProgram(k int) string {
	var sb strings.Builder
	sb.WriteString("program partitioned\n")
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&sb, `
rule Part%d {
  head Ppart%d(N) = item < -> name -> N, -> idx -> I >
  from A = part%d < -> name -> N, -> idx -> I >
}
`, i, i, i)
	}
	return sb.String()
}

// PartitionedEntry builds one entry of family fam for
// PartitionedProgram: a part<fam> tree named p<fam>_<id>.
func PartitionedEntry(fam int, id string, idx int64) (tree.Name, *tree.Node) {
	name := tree.PlainName(fmt.Sprintf("p%d_%s", fam, id))
	t := tree.Sym(fmt.Sprintf("part%d", fam),
		tree.Sym("name", tree.Str(fmt.Sprintf("n%d_%s", fam, id))),
		tree.Sym("idx", tree.IntLeaf(idx)))
	return name, t
}

// PartitionedStore builds per entries for each of the k families of
// PartitionedProgram.
func PartitionedStore(k, per int) *tree.Store {
	store := tree.NewStore()
	for fam := 1; fam <= k; fam++ {
		for j := 0; j < per; j++ {
			n, t := PartitionedEntry(fam, fmt.Sprintf("%04d", j), int64(j))
			store.Put(n, t)
		}
	}
	return store
}
