package workload

import (
	"testing"

	"yat/internal/engine"
	"yat/internal/pattern"
	"yat/internal/sgml"
	"yat/internal/tree"
	"yat/internal/yatl"
)

func TestSuppliersDeterministic(t *testing.T) {
	a := Suppliers(10, 42)
	b := Suppliers(10, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("supplier %d differs across runs with same seed", i)
		}
	}
	c := Suppliers(10, 43)
	same := true
	for i := range a {
		if a[i].Address != c[i].Address {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical suppliers")
	}
	// Addresses parse with the built-in city/zip functions.
	reg := engine.NewRegistry()
	for _, s := range a {
		city, typed, err := reg.Call("city", []tree.Value{tree.String(s.Address)})
		if err != nil || !typed {
			t.Fatalf("city(%q): %v", s.Address, err)
		}
		if !city.Equal(tree.String(s.City)) {
			t.Errorf("city(%q) = %v, want %q", s.Address, city, s.City)
		}
		zip, _, err := reg.Call("zip", []tree.Value{tree.String(s.Address)})
		if err != nil || !zip.Equal(tree.Int(s.Zip)) {
			t.Errorf("zip(%q) = %v, want %d", s.Address, zip, s.Zip)
		}
	}
}

func TestBrochuresValidSGML(t *testing.T) {
	dtd := sgml.BrochureDTD()
	pool := Suppliers(5, 1)
	for i, b := range Brochures(20, 3, pool, 1) {
		doc, err := sgml.ParseDocument(b.SGML())
		if err != nil {
			t.Fatalf("brochure %d does not parse: %v", i, err)
		}
		if err := sgml.Validate(doc, dtd); err != nil {
			t.Fatalf("brochure %d invalid: %v", i, err)
		}
	}
}

func TestBrochureTreeMatchesSGMLImport(t *testing.T) {
	pool := Suppliers(3, 9)
	for _, b := range Brochures(5, 2, pool, 9) {
		direct := b.Tree()
		if !pattern.Conforms(direct, nil, pattern.BrochureModel(), "Pbr") {
			t.Fatalf("brochure tree does not conform to Pbr: %s", direct)
		}
	}
}

func TestBrochureStoreRunsRules(t *testing.T) {
	store := BrochureStore(10, 2, 5, 42)
	if store.Len() != 10 {
		t.Fatalf("store = %d entries", store.Len())
	}
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	res, err := engine.Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	cars, sups := 0, 0
	for _, e := range res.Outputs.Entries() {
		switch e.Name.Functor {
		case "Pcar":
			cars++
		case "Psup":
			sups++
		}
	}
	if cars != 10 {
		t.Errorf("cars = %d, want 10", cars)
	}
	if sups == 0 || sups > 5 {
		t.Errorf("suppliers = %d, want 1..5 (Skolem dedup over pool of 5)", sups)
	}
}

func TestDealerDatabaseJoins(t *testing.T) {
	pool := Suppliers(4, 7)
	brochures := Brochures(6, 2, pool, 7)
	db := DealerDatabase(brochures, pool, 7)
	cars, _ := db.Table("cars")
	if cars.Len() != 6 {
		t.Errorf("cars rows = %d", cars.Len())
	}
	sup, _ := db.Table("suppliers")
	if sup.Len() != 4 {
		t.Errorf("suppliers rows = %d", sup.Len())
	}
	sales, _ := db.Table("sales")
	if sales.Len() == 0 {
		t.Error("sales empty")
	}
	// Every brochure number appears as a broch_num.
	nums, _ := cars.Project("broch_num")
	seen := map[int64]bool{}
	for _, v := range nums {
		seen[v.I] = true
	}
	for _, b := range brochures {
		if !seen[b.Number] {
			t.Errorf("brochure %d missing from cars table", b.Number)
		}
	}
}

func TestMatrixTree(t *testing.T) {
	m := MatrixTree(3, 2)
	if len(m.Children) != 3 || len(m.Children[0].Children) != 2 {
		t.Fatalf("matrix shape wrong: %s", m)
	}
	// Transposing it works and swaps dimensions.
	store := tree.NewStore()
	store.Put(tree.PlainName("m"), m)
	prog := yatl.MustParse("program p\n" + yatl.Rule5Source)
	res, err := engine.Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res.Outputs.Get(tree.SkolemName("New", tree.Ref{Name: tree.PlainName("m")}))
	if !ok {
		t.Fatal("transpose output missing")
	}
	if len(out.Children) != 2 || len(out.Children[0].Children) != 3 {
		t.Errorf("transposed shape wrong: %s", out)
	}
}

func TestODMGStoreConformsAndConverts(t *testing.T) {
	store := ODMGStore(3, 4, 2, 11)
	schema := pattern.CarSchemaModel()
	c1, _ := store.Get(tree.PlainName("c1"))
	if !pattern.Conforms(c1, store, schema, "Pcar") {
		t.Fatalf("generated car does not conform to Pcar: %s", c1)
	}
	prog := yatl.MustParse(yatl.WebProgramSource)
	res, err := engine.Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	pages := 0
	for _, e := range res.Outputs.Entries() {
		if e.Name.Functor == "HtmlPage" {
			pages++
		}
	}
	if pages != 7 { // 3 cars + 4 suppliers
		t.Errorf("pages = %d, want 7", pages)
	}
}

func TestRNGBounds(t *testing.T) {
	r := newRNG(0) // zero seed must not wedge the generator
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 8 {
		t.Errorf("poor distribution: %v", seen)
	}
}

func TestSplitStoreRoundRobin(t *testing.T) {
	s := BrochureStore(7, 2, 3, 5)
	parts := SplitStore(s, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	merged := tree.NewStore()
	total := 0
	for _, p := range parts {
		total += p.Len()
		for _, e := range p.Entries() {
			if _, clash := merged.Get(e.Name); clash {
				t.Fatalf("entry %s in two parts", e.Name)
			}
			merged.Put(e.Name, e.Tree)
		}
	}
	if total != s.Len() || merged.Len() != s.Len() {
		t.Fatalf("split lost entries: %d vs %d", total, s.Len())
	}
	// Balanced within one entry.
	for i, p := range parts {
		if d := p.Len() - parts[0].Len(); d < -1 || d > 1 {
			t.Errorf("part %d unbalanced: %d vs %d", i, p.Len(), parts[0].Len())
		}
	}
	if got := SplitStore(s, 0); len(got) != 1 || got[0].Len() != s.Len() {
		t.Errorf("k=0 should degrade to a single full part")
	}
}
