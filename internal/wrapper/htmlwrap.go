package wrapper

import (
	"fmt"
	"sort"
	"strings"

	"yat/internal/tree"
)

// HTMLOptions configures HTML export.
type HTMLOptions struct {
	// URL maps a page identity to its URL; the default sanitizes the
	// canonical key into "<key>.html". "It is the HTML wrapper's
	// responsibility to map these pattern identifiers to a real URL"
	// (§4.1).
	URL func(tree.Name) string
	// PageFunctor selects which Skolem functor denotes pages;
	// defaults to "HtmlPage".
	PageFunctor string
}

func (o *HTMLOptions) url(n tree.Name) string {
	if o != nil && o.URL != nil {
		return o.URL(n)
	}
	return SanitizeURL(n)
}

func (o *HTMLOptions) functor() string {
	if o != nil && o.PageFunctor != "" {
		return o.PageFunctor
	}
	return "HtmlPage"
}

// SanitizeURL is the default identity-to-URL mapping.
func SanitizeURL(n tree.Name) string {
	var b strings.Builder
	for _, r := range n.Key() {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String() + ".html"
}

// ExportHTML renders every page object of a conversion result into
// HTML text, returning URL → document. Anchors (&HtmlPage(...)
// references under href) resolve to the target page's URL. Two
// distinct page identities mapping to the same URL (SanitizeURL is
// lossy) is an error naming both identities — one page silently
// overwriting the other would lose content.
func ExportHTML(outputs *tree.Store, opts *HTMLOptions) (map[string]string, error) {
	pages := map[string]string{}
	owner := map[string]tree.Name{}
	for _, e := range outputs.Entries() {
		if e.Name.Functor != opts.functor() {
			continue
		}
		url := opts.url(e.Name)
		if prev, clash := owner[url]; clash {
			return nil, fmt.Errorf("wrapper: URL collision: pages %s and %s both map to %q", prev, e.Name, url)
		}
		owner[url] = e.Name
		var b strings.Builder
		b.WriteString("<!DOCTYPE html>\n")
		if err := renderHTML(&b, e.Tree, opts); err != nil {
			return nil, fmt.Errorf("wrapper: rendering page %s: %w", e.Name, err)
		}
		b.WriteByte('\n')
		pages[url] = b.String()
	}
	return pages, nil
}

// PageURLs lists the exported page URLs in sorted order.
func PageURLs(pages map[string]string) []string {
	out := make([]string, 0, len(pages))
	for u := range pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// renderHTML renders one YAT html tree as markup. Symbol nodes become
// tags, atom leaves become text; the anchor shape produced by rule
// Web6 — a < href -> &Page, cont -> X > — becomes <a href="url">.
func renderHTML(b *strings.Builder, n *tree.Node, opts *HTMLOptions) error {
	switch label := n.Label.(type) {
	case tree.Symbol:
		if n.IsLeaf() {
			// A leaf symbol is data (a class name like `car` under h1),
			// not markup.
			b.WriteString(htmlEscape(string(label)))
			return nil
		}
		if string(label) == "a" {
			if href, cont, ok := anchorParts(n); ok {
				fmt.Fprintf(b, `<a href="%s">`, opts.url(href))
				if err := renderHTML(b, cont, opts); err != nil {
					return err
				}
				b.WriteString("</a>")
				return nil
			}
		}
		fmt.Fprintf(b, "<%s>", label)
		for _, c := range n.Children {
			if err := renderHTML(b, c, opts); err != nil {
				return err
			}
		}
		fmt.Fprintf(b, "</%s>", label)
		return nil
	case tree.String:
		b.WriteString(htmlEscape(string(label)))
		return nil
	case tree.Int, tree.Float, tree.Bool:
		b.WriteString(htmlEscape(n.Label.Display()))
		return nil
	case tree.Ref:
		// A bare reference renders as a link to the page if it is
		// one, else as its name.
		fmt.Fprintf(b, `<a href="%s">%s</a>`, opts.url(label.Name), htmlEscape(label.Name.String()))
		return nil
	default:
		return fmt.Errorf("cannot render label %s", n.Label.Display())
	}
}

// anchorParts recognizes the Web6 anchor shape.
func anchorParts(n *tree.Node) (href tree.Name, cont *tree.Node, ok bool) {
	if len(n.Children) != 2 {
		return tree.Name{}, nil, false
	}
	h, c := n.Children[0], n.Children[1]
	if !h.Label.Equal(tree.Symbol("href")) || !c.Label.Equal(tree.Symbol("cont")) {
		return tree.Name{}, nil, false
	}
	if len(h.Children) != 1 || len(c.Children) != 1 {
		return tree.Name{}, nil, false
	}
	name, isRef := h.Children[0].RefName()
	if !isRef {
		return tree.Name{}, nil, false
	}
	return name, c.Children[0], true
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
