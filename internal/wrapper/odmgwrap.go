package wrapper

import (
	"fmt"
	"strconv"
	"strings"

	"yat/internal/odmg"
	"yat/internal/pattern"
	"yat/internal/tree"
)

// ExportODMG converts an ODMG database into a YAT store: one entry
// per object, named by its OID, shaped like the paper's ODMG
// patterns:
//
//	class -> car < -> name -> "Golf", ...,
//	                  -> suppliers -> set < &supplier_1, ... > >
func ExportODMG(db *odmg.Database) *tree.Store {
	store := tree.NewStore()
	for _, o := range db.Objects() {
		class := tree.Sym(o.Class)
		for _, nv := range o.Attrs {
			class.Add(tree.Sym(nv.Name, odmgValueTree(nv.Value)))
		}
		store.Put(tree.PlainName(o.OID), tree.Sym("class", class))
	}
	return store
}

func odmgValueTree(v *odmg.Value) *tree.Node {
	switch v.Kind {
	case odmg.TString:
		return tree.Str(v.Str)
	case odmg.TInt:
		return tree.IntLeaf(v.Int)
	case odmg.TFloat:
		return tree.FloatLeaf(v.Float)
	case odmg.TBool:
		return tree.BoolLeaf(v.Bool)
	case odmg.TRef:
		return tree.RefLeaf(tree.PlainName(v.Ref))
	case odmg.TTuple:
		n := tree.Sym("tuple")
		for _, nv := range v.Named {
			n.Add(tree.Sym(nv.Name, odmgValueTree(nv.Value)))
		}
		return n
	default: // collections
		n := tree.Sym(v.Kind.String())
		for _, e := range v.Elems {
			n.Add(odmgValueTree(e))
		}
		return n
	}
}

// ImportODMG materializes a YAT store of class-shaped trees into an
// ODMG database, validating against the schema. Entries that are not
// class trees are skipped (active-domain tolerance); reference leaves
// become object references named by the canonical key of the
// referenced identity.
func ImportODMG(store *tree.Store, schema *odmg.Schema) (*odmg.Database, error) {
	db := odmg.NewDatabase(schema)
	for _, e := range store.Entries() {
		t := e.Tree
		if sym, ok := t.Label.(tree.Symbol); !ok || sym != "class" || len(t.Children) != 1 {
			continue
		}
		classNode := t.Children[0]
		className, ok := classNode.Label.(tree.Symbol)
		if !ok {
			continue
		}
		class, declared := schema.Class(string(className))
		if !declared {
			continue
		}
		obj := &odmg.Object{OID: e.Name.Key(), Class: class.Name}
		if len(classNode.Children) != len(class.Attrs) {
			return nil, fmt.Errorf("wrapper: object %s has %d attributes, class %s declares %d",
				e.Name, len(classNode.Children), class.Name, len(class.Attrs))
		}
		for i, attrNode := range classNode.Children {
			attrName, ok := attrNode.Label.(tree.Symbol)
			if !ok || string(attrName) != class.Attrs[i].Name || len(attrNode.Children) != 1 {
				return nil, fmt.Errorf("wrapper: object %s: malformed attribute %d (want %s)",
					e.Name, i, class.Attrs[i].Name)
			}
			v, err := odmgValueFromTree(attrNode.Children[0], class.Attrs[i].Type)
			if err != nil {
				return nil, fmt.Errorf("wrapper: object %s attribute %s: %w", e.Name, attrName, err)
			}
			obj.Attrs = append(obj.Attrs, odmg.NamedValue{Name: string(attrName), Value: v})
		}
		db.Put(obj)
	}
	if err := db.Check(); err != nil {
		return nil, err
	}
	return db, nil
}

func odmgValueFromTree(n *tree.Node, t *odmg.Type) (*odmg.Value, error) {
	switch t.Kind {
	case odmg.TString:
		switch l := n.Label.(type) {
		case tree.String:
			return odmg.Str(string(l)), nil
		case tree.Int:
			return odmg.Str(strconv.FormatInt(int64(l), 10)), nil
		}
		return nil, fmt.Errorf("expected string, found %s", n.Label.Display())
	case odmg.TInt:
		switch l := n.Label.(type) {
		case tree.Int:
			return odmg.Int(int64(l)), nil
		case tree.String:
			if i, err := strconv.ParseInt(strings.TrimSpace(string(l)), 10, 64); err == nil {
				return odmg.Int(i), nil
			}
		}
		return nil, fmt.Errorf("expected int, found %s", n.Label.Display())
	case odmg.TFloat:
		switch l := n.Label.(type) {
		case tree.Float:
			return odmg.Float(float64(l)), nil
		case tree.Int:
			return odmg.Float(float64(l)), nil
		}
		return nil, fmt.Errorf("expected float, found %s", n.Label.Display())
	case odmg.TBool:
		if l, ok := n.Label.(tree.Bool); ok {
			return odmg.Bool(bool(l)), nil
		}
		return nil, fmt.Errorf("expected bool, found %s", n.Label.Display())
	case odmg.TRef:
		name, ok := n.RefName()
		if !ok {
			return nil, fmt.Errorf("expected reference, found %s", n.Label.Display())
		}
		return odmg.Ref(name.Key()), nil
	case odmg.TTuple:
		if len(n.Children) != len(t.Fields) {
			return nil, fmt.Errorf("tuple arity %d, declared %d", len(n.Children), len(t.Fields))
		}
		v := &odmg.Value{Kind: odmg.TTuple}
		for i, c := range n.Children {
			inner, err := odmgValueFromTree(c.Children[0], t.Fields[i].Type)
			if err != nil {
				return nil, err
			}
			v.Named = append(v.Named, odmg.NamedValue{Name: t.Fields[i].Name, Value: inner})
		}
		return v, nil
	default: // collections
		if sym, ok := n.Label.(tree.Symbol); !ok || string(sym) != t.Kind.String() {
			return nil, fmt.Errorf("expected %s node, found %s", t.Kind, n.Label.Display())
		}
		v := &odmg.Value{Kind: t.Kind}
		for _, c := range n.Children {
			inner, err := odmgValueFromTree(c, t.Elem)
			if err != nil {
				return nil, err
			}
			v.Elems = append(v.Elems, inner)
		}
		return v, nil
	}
}

// ODMGSchemaModel derives the YAT model of an ODMG schema: one
// pattern per class, exactly the Car Schema construction of Figure 2.
func ODMGSchemaModel(s *odmg.Schema) *pattern.Model {
	m := pattern.NewModel()
	for _, name := range s.Classes() {
		class, _ := s.Class(name)
		classNode := pattern.NewSym(name)
		for _, f := range class.Attrs {
			classNode.Edges = append(classNode.Edges, pattern.One(
				pattern.NewSym(f.Name, pattern.One(typePattern(f.Type, f.Name)))))
		}
		m.Add(pattern.NewPattern("P"+name, pattern.NewSym("class", pattern.One(classNode))))
	}
	return m
}

func typePattern(t *odmg.Type, hint string) *pattern.PTree {
	switch t.Kind {
	case odmg.TString:
		return pattern.NewVar(varNameFor(hint), pattern.KindDomain(tree.KindString))
	case odmg.TInt:
		return pattern.NewVar(varNameFor(hint), pattern.KindDomain(tree.KindInt))
	case odmg.TFloat:
		return pattern.NewVar(varNameFor(hint), pattern.KindDomain(tree.KindFloat))
	case odmg.TBool:
		return pattern.NewVar(varNameFor(hint), pattern.KindDomain(tree.KindBool))
	case odmg.TRef:
		return pattern.NewPatRef("P"+t.Class, true)
	case odmg.TTuple:
		n := pattern.NewSym("tuple")
		for _, f := range t.Fields {
			n.Edges = append(n.Edges, pattern.One(
				pattern.NewSym(f.Name, pattern.One(typePattern(f.Type, f.Name)))))
		}
		return n
	default:
		return pattern.NewSym(t.Kind.String(), pattern.Star(typePattern(t.Elem, hint+"Elem")))
	}
}
