package wrapper

import (
	"yat/internal/pattern"
	"yat/internal/relational"
	"yat/internal/tree"
)

// TableTree converts a relational table into a YAT tree of the shape
// the paper's Rule 3 matches:
//
//	suppliers -*> row < -> sid -> 1, -> name -> "VW center", ... >
func TableTree(t *relational.Table) *tree.Node {
	root := tree.Sym(t.Schema.Name)
	for _, r := range t.Rows() {
		row := tree.Sym("row")
		for i, col := range t.Schema.Columns {
			row.Add(tree.Sym(col.Name, tree.New(relValue(r[i], col.Type))))
		}
		root.Add(row)
	}
	return root
}

func relValue(v relational.Value, t relational.ColType) tree.Value {
	if v.Null {
		return tree.Symbol("null")
	}
	switch t {
	case relational.TInt:
		return tree.Int(v.I)
	case relational.TString:
		return tree.String(v.S)
	case relational.TFloat:
		return tree.Float(v.F)
	case relational.TBool:
		return tree.Bool(v.B)
	}
	return tree.Symbol("null")
}

// ImportRelational exposes a whole database as a store: one entry per
// table, named "R" + table name (the paper's Rsuppliers, Rcars).
func ImportRelational(db *relational.Database) *tree.Store {
	store := tree.NewStore()
	for _, name := range db.Names() {
		t, _ := db.Table(name)
		store.Put(tree.PlainName("R"+name), TableTree(t))
	}
	return store
}

// SchemaPattern derives the YAT pattern of one relation:
//
//	Psuppliers = suppliers -*> row < -> sid -> Sid : int, ... >
func SchemaPattern(s *relational.Schema) *pattern.Pattern {
	row := pattern.NewSym("row")
	for _, col := range s.Columns {
		row.Edges = append(row.Edges, pattern.One(
			pattern.NewSym(col.Name, pattern.One(
				pattern.NewVar(varNameFor(col.Name), colDomain(col.Type))))))
	}
	return pattern.NewPattern("P"+s.Name, pattern.NewSym(s.Name, pattern.Star(row)))
}

func colDomain(t relational.ColType) pattern.Domain {
	switch t {
	case relational.TInt:
		return pattern.KindDomain(tree.KindInt)
	case relational.TString:
		return pattern.KindDomain(tree.KindString)
	case relational.TFloat:
		return pattern.KindDomain(tree.KindFloat)
	case relational.TBool:
		return pattern.KindDomain(tree.KindBool)
	}
	return pattern.AnyDomain
}

// RelationalModel derives the model of a whole database.
func RelationalModel(db *relational.Database) *pattern.Model {
	m := pattern.NewModel()
	for _, name := range db.Names() {
		t, _ := db.Table(name)
		m.Add(SchemaPattern(t.Schema))
	}
	return m
}
