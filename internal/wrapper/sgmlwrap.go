// Package wrapper implements the import/export wrappers of the YAT
// runtime environment (Figure 6): SGML and relational data import
// into YAT trees, ODMG databases import and export, and HTML export.
// Wrappers are the only components that know source formats; the
// interpreter sees uniform named trees.
package wrapper

import (
	"fmt"
	"strconv"
	"strings"

	"yat/internal/pattern"
	"yat/internal/sgml"
	"yat/internal/tree"
)

// SGMLOptions configures SGML import.
type SGMLOptions struct {
	// InferTypes converts numeric and boolean PCDATA into typed
	// atoms (1995 → Int), so predicates like Year > 1975 apply.
	// Without it all character data imports as strings.
	InferTypes bool
	// Validate checks each document against the DTD before import.
	Validate bool
	DTD      *sgml.DTD
}

// SGMLTree converts one SGML element into a YAT tree: each element
// becomes a node labeled with its tag; #PCDATA becomes an atom leaf.
func SGMLTree(e *sgml.Element, opts *SGMLOptions) *tree.Node {
	if opts == nil {
		opts = &SGMLOptions{InferTypes: true}
	}
	n := tree.Sym(e.Name)
	if len(e.Children) == 0 {
		n.Add(tree.New(pcdataValue(e.Text, opts.InferTypes)))
		return n
	}
	for _, c := range e.Children {
		n.Add(SGMLTree(c, opts))
	}
	return n
}

func pcdataValue(text string, infer bool) tree.Value {
	if !infer {
		return tree.String(text)
	}
	t := strings.TrimSpace(text)
	if i, err := strconv.ParseInt(t, 10, 64); err == nil && t != "" {
		return tree.Int(i)
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil && strings.ContainsAny(t, ".eE") {
		return tree.Float(f)
	}
	if t == "true" || t == "false" {
		return tree.Bool(t == "true")
	}
	return tree.String(text)
}

// ImportSGML parses and imports a set of SGML documents into a store,
// naming each by the given name. With Validate set, non-conforming
// documents are rejected.
func ImportSGML(docs map[string]string, opts *SGMLOptions) (*tree.Store, error) {
	if opts == nil {
		opts = &SGMLOptions{InferTypes: true}
	}
	store := tree.NewStore()
	// Deterministic import order.
	names := make([]string, 0, len(docs))
	for n := range docs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, name := range names {
		doc, err := sgml.ParseDocument(docs[name])
		if err != nil {
			return nil, fmt.Errorf("wrapper: importing %s: %w", name, err)
		}
		if opts.Validate && opts.DTD != nil {
			if err := sgml.Validate(doc, opts.DTD); err != nil {
				return nil, fmt.Errorf("wrapper: importing %s: %w", name, err)
			}
		}
		store.Put(tree.PlainName(name), SGMLTree(doc, opts))
	}
	return store, nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// DTDModel derives the YAT model of a DTD: one pattern per element,
// with #PCDATA positions as variables (the paper's Pbr pattern is the
// root pattern of the brochure DTD). Pattern names are "P" + element
// name; recursion in the DTD maps to pattern dereferencing.
func DTDModel(d *sgml.DTD) *pattern.Model {
	m := pattern.NewModel()
	for _, name := range d.Elements() {
		cm, _ := d.Element(name)
		node := pattern.NewSym(name)
		switch cm.Kind {
		case sgml.MPCData:
			node.Edges = append(node.Edges, pattern.One(
				pattern.NewVar(varNameFor(name), pattern.AnyDomain)))
		case sgml.MEmpty:
			// leaf
		case sgml.MAny:
			node.Edges = append(node.Edges, pattern.Star(
				pattern.NewVar(varNameFor(name), pattern.AnyDomain)))
		default:
			node.Edges = append(node.Edges, modelEdges(cm)...)
		}
		m.Add(pattern.NewPattern("P"+name, node))
	}
	return m
}

// modelEdges converts a content model into pattern edges.
func modelEdges(cm *sgml.Model) []pattern.Edge {
	switch cm.Kind {
	case sgml.MName:
		child := pattern.NewPatRef("P"+cm.Name, false)
		switch cm.Occ {
		case sgml.One:
			return []pattern.Edge{pattern.One(child)}
		default:
			// *, + and ? all weaken to the model's star indicator.
			return []pattern.Edge{pattern.Star(child)}
		}
	case sgml.MSeq:
		var out []pattern.Edge
		for _, it := range cm.Items {
			out = append(out, modelEdges(it)...)
		}
		if cm.Occ != sgml.One {
			// A repeated group weakens to a star over each member.
			for i := range out {
				out[i].Occ = pattern.OccStar
			}
		}
		return out
	case sgml.MChoice:
		// A choice weakens to a star over the alternatives (the model
		// layer has unions at pattern level, not edge level).
		var out []pattern.Edge
		for _, it := range cm.Items {
			es := modelEdges(it)
			for i := range es {
				es[i].Occ = pattern.OccStar
			}
			out = append(out, es...)
		}
		return out
	case sgml.MPCData:
		return []pattern.Edge{pattern.One(pattern.NewVar("Data", pattern.AnyDomain))}
	}
	return nil
}

// varNameFor capitalizes an element name into a variable name.
func varNameFor(elem string) string {
	if elem == "" {
		return "X"
	}
	return strings.ToUpper(elem[:1]) + elem[1:]
}
