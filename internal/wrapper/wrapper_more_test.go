package wrapper

import (
	"strings"
	"testing"

	"yat/internal/odmg"
	"yat/internal/pattern"
	"yat/internal/sgml"
	"yat/internal/tree"
)

func TestDTDModelChoiceAndAny(t *testing.T) {
	d := sgml.MustParseDTD(`<!DOCTYPE doc [
<!ELEMENT doc (head?, (para | list)+)>
<!ELEMENT head (#PCDATA)>
<!ELEMENT para (#PCDATA)>
<!ELEMENT list (para)+>
<!ELEMENT free ANY>
]>`)
	m := DTDModel(d)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Pdoc", "Phead", "Ppara", "Plist", "Pfree"} {
		if !m.Has(name) {
			t.Errorf("model missing %s", name)
		}
	}
	// A valid document conforms to the derived model.
	doc := sgml.MustParseDocument(`<doc><head>h</head><para>a</para><list><para>b</para></list></doc>`)
	n := SGMLTree(doc, nil)
	if !pattern.Conforms(n, nil, m, "Pdoc") {
		t.Errorf("document does not conform to choice/optional model: %s", n)
	}
}

func TestDTDModelEmptyElement(t *testing.T) {
	d := sgml.MustParseDTD(`<!DOCTYPE doc [
<!ELEMENT doc (leaf)>
<!ELEMENT leaf EMPTY>
]>`)
	m := DTDModel(d)
	leaf, ok := m.Get("Pleaf")
	if !ok || len(leaf.Union[0].Edges) != 0 {
		t.Errorf("EMPTY element should derive a leaf pattern: %v", leaf)
	}
}

func TestODMGSchemaModelRichTypes(t *testing.T) {
	schema := odmg.NewSchema(
		&odmg.Class{Name: "thing", Attrs: []odmg.Field{
			{Name: "tags", Type: odmg.ListOf(odmg.StringT)},
			{Name: "pos", Type: odmg.TupleOf(
				odmg.Field{Name: "x", Type: odmg.IntT},
				odmg.Field{Name: "y", Type: odmg.FloatT})},
			{Name: "flag", Type: odmg.BoolT},
		}},
	)
	m := ODMGSchemaModel(schema)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p, _ := m.Get("Pthing")
	s := p.String()
	for _, frag := range []string{"list -*>", "tuple", "x ->", ": float", ": bool"} {
		if !strings.Contains(s, frag) {
			t.Errorf("derived pattern missing %q: %s", frag, s)
		}
	}
	if err := pattern.InstanceOf(m, pattern.ODMGModel()); err != nil {
		t.Errorf("rich schema model not an ODMG instance: %v", err)
	}
}

func TestODMGRoundTripTuplesAndLists(t *testing.T) {
	schema := odmg.NewSchema(
		&odmg.Class{Name: "thing", Attrs: []odmg.Field{
			{Name: "tags", Type: odmg.ListOf(odmg.StringT)},
			{Name: "pos", Type: odmg.TupleOf(
				odmg.Field{Name: "x", Type: odmg.IntT},
				odmg.Field{Name: "y", Type: odmg.FloatT})},
			{Name: "flag", Type: odmg.BoolT},
		}},
	)
	db := odmg.NewDatabase(schema)
	db.Put(&odmg.Object{OID: "t1", Class: "thing", Attrs: []odmg.NamedValue{
		{Name: "tags", Value: odmg.List(odmg.Str("a"), odmg.Str("b"))},
		{Name: "pos", Value: odmg.Tuple(
			odmg.NamedValue{Name: "x", Value: odmg.Int(3)},
			odmg.NamedValue{Name: "y", Value: odmg.Float(2.5)})},
		{Name: "flag", Value: odmg.Bool(true)},
	}})
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}
	store := ExportODMG(db)
	n, _ := store.Get(tree.PlainName("t1"))
	want := tree.MustParse(`class < thing < tags < list < "a", "b" > >,
		pos < tuple < x < 3 >, y < 2.5 > > >, flag < true > > >`)
	if !n.Equal(want) {
		t.Errorf("export:\n got: %s\nwant: %s", n, want)
	}
	back, err := ImportODMG(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	obj, _ := back.Get(tree.PlainName("t1").Key())
	pos, _ := obj.Attr("pos")
	if len(pos.Named) != 2 || pos.Named[1].Value.Float != 2.5 {
		t.Errorf("tuple after round trip: %s", pos)
	}
}

func TestImportODMGErrors(t *testing.T) {
	schema := odmg.CarDealerSchema()
	mk := func(src string) error {
		store, err := tree.ParseStore(src)
		if err != nil {
			t.Fatal(err)
		}
		_, err = ImportODMG(store, schema)
		return err
	}
	// Wrong attribute count.
	if err := mk(`s1: class < supplier < name < "n" > > >`); err == nil {
		t.Error("missing attributes accepted")
	}
	// Wrong attribute kind.
	if err := mk(`s1: class < supplier < name < "n" >, city < "c" >, zip < true > > >`); err == nil {
		t.Error("bool zip accepted")
	}
	// Dangling reference (fails db.Check).
	if err := mk(`c1: class < car < name < "n" >, desc < "d" >,
		suppliers < set < &ghost > > > >`); err == nil {
		t.Error("dangling reference accepted")
	}
	// Non-class entries are skipped silently.
	store, _ := tree.ParseStore(`x: whatever < 1 >`)
	db, err := ImportODMG(store, schema)
	if err != nil || db.Len() != 0 {
		t.Errorf("non-class entry handling: %v, %d", err, db.Len())
	}
	// String-to-int coercion works for digit strings.
	db2, err := ImportODMG(mustStore(t, `s1: class < supplier < name < "n" >, city < "c" >, zip < "75005" > > >`), schema)
	if err != nil {
		t.Fatalf("digit-string zip should coerce: %v", err)
	}
	obj, _ := db2.Get(tree.PlainName("s1").Key())
	z, _ := obj.Attr("zip")
	if z.Int != 75005 {
		t.Errorf("coerced zip = %d", z.Int)
	}
}

func mustStore(t *testing.T, src string) *tree.Store {
	t.Helper()
	s, err := tree.ParseStore(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRenderBareRefAndAtoms(t *testing.T) {
	store := tree.NewStore()
	store.Put(tree.SkolemName("HtmlPage", tree.String("p")), tree.MustParse(
		`html < body < 42, 2.5, true, &other > >`))
	pages, err := ExportHTML(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	var page string
	for _, p := range pages {
		page = p
	}
	for _, frag := range []string{"42", "2.5", "true", `<a href="other.html">other</a>`} {
		if !strings.Contains(page, frag) {
			t.Errorf("page missing %q:\n%s", frag, page)
		}
	}
}

func TestExportHTMLCustomFunctor(t *testing.T) {
	store := tree.NewStore()
	store.Put(tree.SkolemName("Page", tree.String("p")), tree.Sym("html", tree.Str("x")))
	store.Put(tree.SkolemName("HtmlPage", tree.String("q")), tree.Sym("html", tree.Str("y")))
	pages, err := ExportHTML(store, &HTMLOptions{PageFunctor: "Page"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 {
		t.Errorf("functor filter wrong: %v", PageURLs(pages))
	}
}

func TestSanitizeURLDeterministic(t *testing.T) {
	n := tree.SkolemName("HtmlPage", tree.String("Golf GTI / 1995"))
	u1 := SanitizeURL(n)
	u2 := SanitizeURL(n)
	if u1 != u2 || !strings.HasSuffix(u1, ".html") {
		t.Errorf("url = %q / %q", u1, u2)
	}
	if strings.ContainsAny(u1[:len(u1)-5], "/ \"") {
		t.Errorf("unsafe characters in %q", u1)
	}
}
