package wrapper

import (
	"strings"
	"testing"

	"yat/internal/engine"
	"yat/internal/odmg"
	"yat/internal/pattern"
	"yat/internal/relational"
	"yat/internal/sgml"
	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

const brochureDoc = `<brochure>
  <number>1</number>
  <title>Golf</title>
  <model>1995</model>
  <desc>Nice</desc>
  <spplrs>
    <supplier><name>VW center</name><address>Bd Lenoir, 75005 Paris</address></supplier>
  </spplrs>
</brochure>`

func TestSGMLTreeTyped(t *testing.T) {
	doc := sgml.MustParseDocument(brochureDoc)
	n := SGMLTree(doc, nil)
	want := tree.MustParse(`brochure < number < 1 >, title < "Golf" >, model < 1995 >,
		desc < "Nice" >, spplrs < supplier < name < "VW center" >,
		address < "Bd Lenoir, 75005 Paris" > > > >`)
	if !n.Equal(want) {
		t.Errorf("imported tree:\n got: %s\nwant: %s", n, want)
	}
}

func TestSGMLTreeUntyped(t *testing.T) {
	doc := sgml.MustParseDocument(brochureDoc)
	n := SGMLTree(doc, &SGMLOptions{InferTypes: false})
	num := n.Children[0].Children[0]
	if !num.Label.Equal(tree.String("1")) {
		t.Errorf("untyped number = %v", num.Label)
	}
}

func TestPCDataInference(t *testing.T) {
	cases := []struct {
		in   string
		want tree.Value
	}{
		{"1995", tree.Int(1995)},
		{"-3", tree.Int(-3)},
		{"2.5", tree.Float(2.5)},
		{"1e3", tree.Float(1000)},
		{"true", tree.Bool(true)},
		{"false", tree.Bool(false)},
		{"Golf", tree.String("Golf")},
		{"", tree.String("")},
		{"12a", tree.String("12a")},
	}
	for _, c := range cases {
		if got := pcdataValue(c.in, true); !got.Equal(c.want) {
			t.Errorf("pcdataValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestImportSGMLValidates(t *testing.T) {
	good := map[string]string{"b1": brochureDoc}
	store, err := ImportSGML(good, &SGMLOptions{InferTypes: true, Validate: true, DTD: sgml.BrochureDTD()})
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 || !store.Has(tree.PlainName("b1")) {
		t.Errorf("store = %v", store.Names())
	}
	bad := map[string]string{"b1": `<brochure><title>t</title></brochure>`}
	if _, err := ImportSGML(bad, &SGMLOptions{Validate: true, DTD: sgml.BrochureDTD()}); err == nil {
		t.Error("invalid document accepted")
	}
	malformed := map[string]string{"b1": `<a><b></a>`}
	if _, err := ImportSGML(malformed, nil); err == nil {
		t.Error("malformed document accepted")
	}
}

func TestImportedSGMLRunsRule1(t *testing.T) {
	// End-to-end SGML import → Rule 1: the wrapper output matches the
	// rule's body pattern.
	store, err := ImportSGML(map[string]string{"b1": brochureDoc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog := yatl.MustParse("program p\n" + yatl.Rule1Source)
	res, err := engine.Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	oid := tree.SkolemName("Psup", tree.String("VW center"))
	if _, ok := res.Outputs.Get(oid); !ok {
		t.Errorf("Rule 1 did not fire on imported SGML:\n%s", tree.FormatStore(res.Outputs))
	}
}

func TestDTDModel(t *testing.T) {
	m := DTDModel(sgml.BrochureDTD())
	if err := m.Validate(); err != nil {
		t.Fatalf("DTD model invalid: %v", err)
	}
	if !m.Has("Pbrochure") || !m.Has("Psupplier") {
		t.Errorf("model patterns = %v", m.Names())
	}
	// It is a Yat instance and the imported document conforms to it.
	if err := pattern.InstanceOf(m, pattern.YatModel()); err != nil {
		t.Errorf("DTD model not a Yat instance: %v", err)
	}
	doc := sgml.MustParseDocument(brochureDoc)
	n := SGMLTree(doc, nil)
	if !pattern.Conforms(n, nil, m, "Pbrochure") {
		t.Error("imported document does not conform to its DTD model")
	}
	// And the paper's hand-written Pbr pattern accepts the same data.
	if !pattern.Conforms(n, nil, pattern.BrochureModel(), "Pbr") {
		t.Error("imported document does not conform to Pbr")
	}
}

func TestTableTreeAndImportRelational(t *testing.T) {
	supSchema, _, _ := relational.DealerSchemas()
	db := relational.NewDatabase()
	sup := db.MustCreate(supSchema)
	sup.MustInsert(relational.IntV(1), relational.StrV("VW center"),
		relational.StrV("Paris"), relational.StrV("Bd Lenoir"), relational.StrV("t1"))

	store := ImportRelational(db)
	n, ok := store.Get(tree.PlainName("Rsuppliers"))
	if !ok {
		t.Fatalf("Rsuppliers missing: %v", store.Names())
	}
	want := tree.MustParse(`suppliers < row < sid < 1 >, name < "VW center" >,
		city < "Paris" >, address < "Bd Lenoir" >, tel < "t1" > > >`)
	if !n.Equal(want) {
		t.Errorf("table tree:\n got: %s\nwant: %s", n, want)
	}
	// The tree conforms to the derived schema pattern.
	m := RelationalModel(db)
	if !pattern.Conforms(n, nil, m, "Psuppliers") {
		t.Error("table tree does not conform to its schema pattern")
	}
}

func TestRelationalNulls(t *testing.T) {
	s := relational.MustSchema("t", "v:int")
	tb := relational.NewTable(s)
	tb.MustInsert(relational.NullV())
	n := TableTree(tb)
	if !n.Children[0].Children[0].Children[0].Label.Equal(tree.Symbol("null")) {
		t.Errorf("NULL import = %s", n)
	}
}

func TestODMGExportImportRoundTrip(t *testing.T) {
	schema := odmg.CarDealerSchema()
	db := odmg.NewDatabase(schema)
	s1 := &odmg.Object{OID: "s1", Class: "supplier", Attrs: []odmg.NamedValue{
		{Name: "name", Value: odmg.Str("VW center")},
		{Name: "city", Value: odmg.Str("Paris")},
		{Name: "zip", Value: odmg.Int(75005)},
	}}
	c1 := &odmg.Object{OID: "c1", Class: "car", Attrs: []odmg.NamedValue{
		{Name: "name", Value: odmg.Str("Golf")},
		{Name: "desc", Value: odmg.Str("Compact")},
		{Name: "suppliers", Value: odmg.Set(odmg.Ref("s1"))},
	}}
	db.Put(s1)
	db.Put(c1)
	if err := db.Check(); err != nil {
		t.Fatal(err)
	}

	store := ExportODMG(db)
	carTree, _ := store.Get(tree.PlainName("c1"))
	want := tree.MustParse(`class < car < name < "Golf" >, desc < "Compact" >,
		suppliers < set < &s1 > > > >`)
	if !carTree.Equal(want) {
		t.Errorf("export:\n got: %s\nwant: %s", carTree, want)
	}

	back, err := ImportODMG(store, schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("reimported %d objects", back.Len())
	}
	car, ok := back.Get(tree.PlainName("c1").Key())
	if !ok {
		t.Fatal("car lost in round trip")
	}
	sups, _ := car.Attr("suppliers")
	if len(sups.Elems) != 1 || sups.Elems[0].Ref != tree.PlainName("s1").Key() {
		t.Errorf("suppliers after round trip = %s", sups)
	}
}

func TestImportODMGFromEngineOutput(t *testing.T) {
	// The full §3.1 flow: brochures → Rules 1+2 → materialize into
	// the ODMG database.
	store := workload.BrochureStore(4, 2, 6, 42)
	prog := yatl.MustParse(yatl.SGMLToODMGSource)
	res, err := engine.Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ImportODMG(res.Outputs, odmg.CarDealerSchema())
	if err != nil {
		t.Fatalf("materialization failed: %v\noutputs:\n%s", err, tree.FormatStore(res.Outputs))
	}
	if len(db.OfClass("car")) == 0 || len(db.OfClass("supplier")) == 0 {
		t.Errorf("materialized db: %d cars, %d suppliers",
			len(db.OfClass("car")), len(db.OfClass("supplier")))
	}
	if err := db.Check(); err != nil {
		t.Errorf("materialized db invalid: %v", err)
	}
}

func TestODMGSchemaModelMatchesFig2(t *testing.T) {
	m := ODMGSchemaModel(odmg.CarDealerSchema())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The derived model plays the Car Schema's role in Figure 2: an
	// instance of the ODMG model.
	if err := pattern.InstanceOf(m, pattern.ODMGModel()); err != nil {
		t.Errorf("derived schema model not an ODMG instance: %v", err)
	}
}

func TestExportHTML(t *testing.T) {
	store := workload.ODMGStore(1, 2, 2, 7)
	prog := yatl.MustParse(yatl.WebProgramSource)
	res, err := engine.Run(prog, store, nil)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := ExportHTML(res.Outputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 3 { // 1 car + 2 suppliers
		t.Fatalf("pages = %v", PageURLs(pages))
	}
	carURL := SanitizeURL(tree.SkolemName("HtmlPage", tree.Ref{Name: tree.PlainName("c1")}))
	page, ok := pages[carURL]
	if !ok {
		t.Fatalf("car page missing; have %v", PageURLs(pages))
	}
	for _, frag := range []string{"<!DOCTYPE html>", "<html>", "<h1>car</h1>", "<ul>", "<li>name: ", `<a href="`} {
		if !strings.Contains(page, frag) {
			t.Errorf("car page missing %q:\n%s", frag, page)
		}
	}
	// Anchors point at existing pages.
	for _, u := range PageURLs(pages) {
		_ = u
	}
	for target := range pages {
		_ = target
	}
	for _, frag := range extractHrefs(page) {
		if _, ok := pages[frag]; !ok {
			t.Errorf("anchor target %q is not an exported page", frag)
		}
	}
}

func extractHrefs(page string) []string {
	var out []string
	rest := page
	for {
		i := strings.Index(rest, `href="`)
		if i < 0 {
			return out
		}
		rest = rest[i+len(`href="`):]
		j := strings.Index(rest, `"`)
		if j < 0 {
			return out
		}
		out = append(out, rest[:j])
		rest = rest[j:]
	}
}

func TestHTMLEscaping(t *testing.T) {
	store := tree.NewStore()
	store.Put(tree.SkolemName("HtmlPage", tree.String("x")), tree.MustParse(
		`html < head -> title -> "a < b & c" , body -> "text" >`))
	pages, err := ExportHTML(store, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pages {
		if !strings.Contains(p, "a &lt; b &amp; c") {
			t.Errorf("escaping wrong:\n%s", p)
		}
	}
}

func TestCustomURLMapping(t *testing.T) {
	store := tree.NewStore()
	store.Put(tree.SkolemName("HtmlPage", tree.String("x")), tree.Sym("html", tree.Str("hi")))
	pages, err := ExportHTML(store, &HTMLOptions{URL: func(n tree.Name) string { return "custom.html" }})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pages["custom.html"]; !ok {
		t.Errorf("custom URL not used: %v", PageURLs(pages))
	}
}

// SanitizeURL is lossy: distinct identities can map to one URL. That
// must be a detected error naming both pages, never a silent overwrite
// of whichever page exported first.
func TestExportHTMLURLCollision(t *testing.T) {
	store := tree.NewStore()
	a := tree.SkolemName("HtmlPage", tree.String("x.y"))
	b := tree.SkolemName("HtmlPage", tree.String("x;y"))
	if SanitizeURL(a) != SanitizeURL(b) {
		t.Fatalf("test setup: %q and %q should collide", SanitizeURL(a), SanitizeURL(b))
	}
	store.Put(a, tree.Sym("html", tree.Str("first")))
	store.Put(b, tree.Sym("html", tree.Str("second")))
	pages, err := ExportHTML(store, nil)
	if err == nil {
		t.Fatalf("collision not detected; exported %v", PageURLs(pages))
	}
	msg := err.Error()
	for _, want := range []string{"collision", a.String(), b.String(), SanitizeURL(a)} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	// Distinct URLs stay fine.
	ok := tree.NewStore()
	ok.Put(tree.SkolemName("HtmlPage", tree.String("one")), tree.Sym("html", tree.Str("1")))
	ok.Put(tree.SkolemName("HtmlPage", tree.String("two")), tree.Sym("html", tree.Str("2")))
	if _, err := ExportHTML(ok, nil); err != nil {
		t.Fatalf("no collision, but: %v", err)
	}
}
