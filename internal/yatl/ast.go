// Package yatl defines the abstract syntax of YATL, the YAT
// conversion language (§3 of the paper), together with a concrete
// text syntax, parser and printer.
//
// A program is a set of rules. Each rule has a head — a single
// pattern whose name is an explicit Skolem functor with arguments —
// and a body made of input patterns, boolean predicates and external
// function calls:
//
//	rule Sup {
//	  head Psup(SN) = class -> supplier < -> name -> SN,
//	                                       -> city -> C, -> zip -> Z >
//	  from Pbr = brochure < -> number -> Num, -> title -> T,
//	                        -> model -> Year, -> desc -> D,
//	                        -> spplrs -*> supplier < -> name -> SN,
//	                                                  -> address -> Add > >
//	  where Year > 1975
//	  let C = city(Add)
//	  let Z = zip(Add)
//	}
//
// The paper's graphical notation maps to text as follows: the
// occurrence indicators are the arrows `->` (exactly one), `-*>`
// (star), `-{}>` (grouping with duplicate elimination), `-[v1,v2]>`
// (ordered grouping) and `-#I>` (index edges); dereferenced pattern
// names are written `^P(args)` and references `&P(args)`; identifiers
// starting with an upper-case letter are variables, all others are
// symbol constants.
package yatl

import (
	"fmt"
	"strings"

	"yat/internal/pattern"
	"yat/internal/tree"
)

// Pos is a source position in YATL concrete syntax (an alias of
// pattern.Pos so both packages speak the same coordinates). AST nodes
// built programmatically carry the zero Pos.
type Pos = pattern.Pos

// Program is a named set of rules plus optional model declarations
// and explicit rule-ordering constraints (§4.2 allows the user to
// enforce a hierarchy).
type Program struct {
	Name   string
	Rules  []*Rule
	Models []*ModelDecl
	Orders []Order // explicit "apply A before B" constraints
}

// ModelDecl is a named model declared or imported by a program.
type ModelDecl struct {
	Name  string
	Model *pattern.Model
	Pos   Pos
}

// Order is an explicit precedence constraint between two rules.
type Order struct {
	Before, After string
	Pos           Pos
}

// Rule is one YATL rule.
type Rule struct {
	Name      string
	Head      Head
	Body      []BodyPattern
	Preds     []Pred
	Lets      []Let
	Exception bool // exception rule: empty head, fires when nothing else matched
	Pos       Pos  // position of the rule name
}

// Head is the rule head: a Skolem functor with arguments naming the
// output pattern, and the pattern tree giving its structure.
type Head struct {
	Functor string
	Args    []pattern.Arg
	Tree    *pattern.PTree
	Pos     Pos // position of the functor
}

// BodyPattern is one input pattern of a rule body. Var is the pattern
// variable naming the matched input (bound to the input's identity);
// Domain optionally restricts the input to instances of a named
// pattern.
type BodyPattern struct {
	Var    string
	Domain string
	Tree   *pattern.PTree
	Pos    Pos // position of the pattern variable
}

// CmpOp is a comparison operator in a predicate.
type CmpOp uint8

// The comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String returns the concrete syntax of the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Operand is one side of a comparison or one argument of a call: a
// variable or a constant.
type Operand struct {
	IsVar bool
	Var   string
	Const tree.Value
}

// VarOperand returns a variable operand.
func VarOperand(name string) Operand { return Operand{IsVar: true, Var: name} }

// ConstOperand returns a constant operand.
func ConstOperand(v tree.Value) Operand { return Operand{Const: v} }

// Display renders the operand.
func (o Operand) Display() string {
	if o.IsVar {
		return o.Var
	}
	return o.Const.Display()
}

// Pred is a boolean condition filtering the variable bindings: either
// a comparison between two operands, or a boolean external function
// applied to operands (e.g. sameaddress(Add, C, Add2)).
type Pred struct {
	// Comparison form (Call == ""):
	Left  Operand
	Op    CmpOp
	Right Operand
	// Call form:
	Call string
	Args []Operand
	Pos  Pos // position of the predicate's first token
}

// IsCall reports whether the predicate is a boolean function call.
func (p Pred) IsCall() bool { return p.Call != "" }

// String renders the predicate in concrete syntax.
func (p Pred) String() string {
	if p.IsCall() {
		return p.Call + "(" + joinOperands(p.Args) + ")"
	}
	return p.Left.Display() + " " + p.Op.String() + " " + p.Right.Display()
}

// Let is an external function call computing a new binding:
// `let C = city(Add)`.
type Let struct {
	Var  string
	Func string
	Args []Operand
	Pos  Pos // position of the bound variable
}

// String renders the let clause.
func (l Let) String() string {
	return "let " + l.Var + " = " + l.Func + "(" + joinOperands(l.Args) + ")"
}

func joinOperands(ops []Operand) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.Display()
	}
	return strings.Join(parts, ", ")
}

// NewRule returns a rule with the given name, head and body; use the
// With* methods for predicates and lets.
func NewRule(name string, head Head, body ...BodyPattern) *Rule {
	return &Rule{Name: name, Head: head, Body: body}
}

// WithPred appends a predicate and returns the rule.
func (r *Rule) WithPred(p Pred) *Rule {
	r.Preds = append(r.Preds, p)
	return r
}

// WithLet appends an external function call and returns the rule.
func (r *Rule) WithLet(l Let) *Rule {
	r.Lets = append(r.Lets, l)
	return r
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	c := &Rule{
		Name:      r.Name,
		Exception: r.Exception,
		Pos:       r.Pos,
		Head: Head{
			Functor: r.Head.Functor,
			Args:    append([]pattern.Arg(nil), r.Head.Args...),
			Pos:     r.Head.Pos,
		},
		Preds: append([]Pred(nil), r.Preds...),
		Lets:  make([]Let, len(r.Lets)),
	}
	if r.Head.Tree != nil {
		c.Head.Tree = r.Head.Tree.Clone()
	}
	for i, l := range r.Lets {
		c.Lets[i] = Let{Var: l.Var, Func: l.Func, Args: append([]Operand(nil), l.Args...), Pos: l.Pos}
	}
	for i := range c.Preds {
		c.Preds[i].Args = append([]Operand(nil), r.Preds[i].Args...)
	}
	for _, bp := range r.Body {
		c.Body = append(c.Body, BodyPattern{Var: bp.Var, Domain: bp.Domain, Tree: bp.Tree.Clone(), Pos: bp.Pos})
	}
	return c
}

// Vars returns every variable occurring in the rule (head, body,
// predicates, lets), in order of first occurrence.
func (r *Rule) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(names ...string) {
		for _, n := range names {
			if n != "" && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, a := range r.Head.Args {
		if a.IsVar {
			add(a.Var)
		}
	}
	if r.Head.Tree != nil {
		add(r.Head.Tree.Vars()...)
	}
	for _, bp := range r.Body {
		add(bp.Var)
		add(bp.Tree.Vars()...)
	}
	for _, p := range r.Preds {
		if p.IsCall() {
			for _, a := range p.Args {
				if a.IsVar {
					add(a.Var)
				}
			}
		} else {
			if p.Left.IsVar {
				add(p.Left.Var)
			}
			if p.Right.IsVar {
				add(p.Right.Var)
			}
		}
	}
	for _, l := range r.Lets {
		add(l.Var)
		for _, a := range l.Args {
			if a.IsVar {
				add(a.Var)
			}
		}
	}
	return out
}

// RenameVars returns a copy of the rule with every variable renamed
// through the mapping (unmapped variables are kept). Program
// instantiation uses this to avoid clashes when several copies of a
// rule are merged (§4.1: "the system must provide appropriate
// renaming of variables").
func (r *Rule) RenameVars(mapping map[string]string) *Rule {
	ren := func(v string) string {
		if n, ok := mapping[v]; ok {
			return n
		}
		return v
	}
	c := r.Clone()
	for i, a := range c.Head.Args {
		if a.IsVar {
			c.Head.Args[i].Var = ren(a.Var)
		}
	}
	if c.Head.Tree != nil {
		renameTree(c.Head.Tree, ren)
	}
	for i := range c.Body {
		c.Body[i].Var = ren(c.Body[i].Var)
		renameTree(c.Body[i].Tree, ren)
	}
	for i := range c.Preds {
		p := &c.Preds[i]
		if p.IsCall() {
			for j, a := range p.Args {
				if a.IsVar {
					p.Args[j].Var = ren(a.Var)
				}
			}
		} else {
			if p.Left.IsVar {
				p.Left.Var = ren(p.Left.Var)
			}
			if p.Right.IsVar {
				p.Right.Var = ren(p.Right.Var)
			}
		}
	}
	for i := range c.Lets {
		l := &c.Lets[i]
		l.Var = ren(l.Var)
		for j, a := range l.Args {
			if a.IsVar {
				l.Args[j].Var = ren(a.Var)
			}
		}
	}
	return c
}

func renameTree(t *pattern.PTree, ren func(string) string) {
	if t == nil {
		return
	}
	switch l := t.Label.(type) {
	case pattern.Var:
		t.Label = pattern.Var{Name: ren(l.Name), Domain: l.Domain}
	case pattern.PatRef:
		args := append([]pattern.Arg(nil), l.Args...)
		for i, a := range args {
			if a.IsVar {
				args[i].Var = ren(a.Var)
			}
		}
		t.Label = pattern.PatRef{Name: l.Name, Args: args, Ref: l.Ref}
	}
	for i := range t.Edges {
		e := &t.Edges[i]
		if e.Index != "" {
			e.Index = ren(e.Index)
		}
		for j, v := range e.OrderBy {
			e.OrderBy[j] = ren(v)
		}
		renameTree(e.To, ren)
	}
}

// String renders the rule in concrete syntax.
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString("rule ")
	b.WriteString(r.Name)
	b.WriteString(" {\n")
	if r.Exception {
		b.WriteString("  exception\n")
	} else {
		b.WriteString("  head ")
		b.WriteString(r.Head.Functor)
		if len(r.Head.Args) > 0 {
			b.WriteByte('(')
			parts := make([]string, len(r.Head.Args))
			for i, a := range r.Head.Args {
				parts[i] = a.Display()
			}
			b.WriteString(strings.Join(parts, ", "))
			b.WriteByte(')')
		}
		b.WriteString(" = ")
		b.WriteString(r.Head.Tree.String())
		b.WriteByte('\n')
	}
	for _, bp := range r.Body {
		b.WriteString("  from ")
		b.WriteString(bp.Var)
		if bp.Domain != "" {
			b.WriteString(" : ")
			b.WriteString(bp.Domain)
		}
		b.WriteString(" = ")
		b.WriteString(bp.Tree.String())
		b.WriteByte('\n')
	}
	for _, p := range r.Preds {
		b.WriteString("  where ")
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	for _, l := range r.Lets {
		b.WriteString("  ")
		b.WriteString(l.String())
		b.WriteByte('\n')
	}
	b.WriteString("}\n")
	return b.String()
}

// Functors returns the set of Skolem functors defined by the program
// (head functors), in order of first occurrence.
func (p *Program) Functors() []string {
	var out []string
	seen := map[string]bool{}
	for _, r := range p.Rules {
		if r.Exception {
			continue
		}
		if !seen[r.Head.Functor] {
			seen[r.Head.Functor] = true
			out = append(out, r.Head.Functor)
		}
	}
	return out
}

// Rule returns the rule with the given name.
func (p *Program) Rule(name string) (*Rule, bool) {
	for _, r := range p.Rules {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// Model returns the declared model with the given name.
func (p *Program) Model(name string) (*pattern.Model, bool) {
	for _, m := range p.Models {
		if m.Name == name {
			return m.Model, true
		}
	}
	return nil, false
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	c := &Program{Name: p.Name, Orders: append([]Order(nil), p.Orders...)}
	for _, r := range p.Rules {
		c.Rules = append(c.Rules, r.Clone())
	}
	for _, m := range p.Models {
		c.Models = append(c.Models, &ModelDecl{Name: m.Name, Model: m.Model.Clone()})
	}
	return c
}

// String renders the whole program in concrete syntax (parseable by
// Parse).
func (p *Program) String() string {
	var b strings.Builder
	b.WriteString("program ")
	b.WriteString(p.Name)
	b.WriteString("\n\n")
	for _, m := range p.Models {
		b.WriteString("model ")
		b.WriteString(m.Name)
		b.WriteString(" {\n")
		for _, pat := range m.Model.Patterns() {
			b.WriteString("  ")
			b.WriteString(pat.String())
			b.WriteByte('\n')
		}
		b.WriteString("}\n\n")
	}
	for _, o := range p.Orders {
		fmt.Fprintf(&b, "order %s before %s\n", o.Before, o.After)
	}
	if len(p.Orders) > 0 {
		b.WriteByte('\n')
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}
