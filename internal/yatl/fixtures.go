package yatl

// This file carries the paper's example programs in YATL concrete
// syntax. They are the shared fixtures for the engine, typing,
// composition and experiment tests (experiments E3–E11).

// ODMGModelSource declares the ODMG model (Figure 2) in text form.
const ODMGModelSource = `
model ODMG {
  Pclass = class -> Class_name -*> Att -> ^Ptype
  Ptype = Y : string|int|float|bool
        | set -*> ^Ptype
        | bag -*> ^Ptype
        | list -*> ^Ptype
        | array -*> ^Ptype
        | tuple -*> Att2 -> ^Ptype
        | &Pclass
}
`

// BrochureBody is the body pattern shared by Rules 1, 1', 2 and 4:
// one SGML brochure conforming to the paper's DTD, iterating over its
// suppliers.
const BrochureBody = `brochure < -> number -> Num, -> title -> T,
                                 -> model -> Year, -> desc -> D,
                                 -> spplrs -*> supplier < -> name -> SN,
                                                          -> address -> Add > >`

// Rule1Source is Rule 1 (§3.1): create one supplier object per
// distinct supplier name found in brochures newer than 1975.
const Rule1Source = `
rule Sup {
  head Psup(SN) = class -> supplier < -> name -> SN, -> city -> C, -> zip -> Z >
  from Pbr = ` + BrochureBody + `
  where Year > 1975
  let C = city(Add)
  let Z = zip(Add)
}
`

// Rule2Source is Rule 2 (§3.1): create one car object per brochure,
// referencing its set of suppliers.
const Rule2Source = `
rule Car {
  head Pcar(Pbr) = class -> car < -> name -> T, -> desc -> D,
                                   -> suppliers -> set -{}> &Psup(SN) >
  from Pbr = ` + BrochureBody + `
}
`

// Rule1PrimeSource is Rule 1' (§3.1): suppliers additionally carry a
// `sells` set referencing the cars they supply — the cyclic-reference
// example.
const Rule1PrimeSource = `
rule SupPrime {
  head Psup(SN) = class -> supplier < -> name -> SN, -> city -> C, -> zip -> Z,
                                       -> sells -> set -{}> &Pcar(Pbr) >
  from Pbr = ` + BrochureBody + `
  let C = city(Add)
  let Z = zip(Add)
}
`

// CyclicSupSource is Rule 1' with the & removed from Pcar — the
// program the paper uses to motivate cycle detection (§3.4). Combined
// with CyclicCarSource it must be rejected.
const CyclicSupSource = `
rule SupCyclic {
  head Psup(SN) = class -> supplier < -> name -> SN, -> city -> C, -> zip -> Z,
                                       -> sells -> set -{}> ^Pcar(Pbr) >
  from Pbr = ` + BrochureBody + `
  let C = city(Add)
  let Z = zip(Add)
}
`

// CyclicCarSource is Rule 2 with the & removed from Psup.
const CyclicCarSource = `
rule CarCyclic {
  head Pcar(Pbr) = class -> car < -> name -> T, -> desc -> D,
                                   -> suppliers -> set -{}> ^Psup(SN) >
  from Pbr = ` + BrochureBody + `
}
`

// Rule3Source is Rule 3 (§3.2): the heterogeneous join between the
// relational database and the SGML brochures. One car object per
// relational car that has a matching brochure; supplier identity is
// reconciled through the shared SN variable and the sameaddress
// external predicate.
const Rule3Source = `
rule CarJoin {
  head Pcar(Cid) = class -> car < -> name -> T, -> desc -> D,
                                   -> suppliers -> set -*> &Psup(Sid) >
  from Pbr = ` + BrochureBody + `
  from Rsuppliers = suppliers -*> row < -> sid -> Sid, -> name -> SN, -> city -> C,
                                         -> address -> Add2, -> tel -> Tel >
  from Rcars = cars -*> row < -> cid -> Cid, -> broch_num -> Num >
  where sameaddress(Add, C, Add2)
}
`

// Rule4Source is Rule 4 (§3.3): an ODMG list of supplier references
// ordered by supplier name, duplicates removed — the combined
// grouping/ordering primitive.
const Rule4Source = `
rule SupList {
  head PsupList(Pbr) = list -[SN]> &Psup(SN)
  from Pbr = ` + BrochureBody + `
}
`

// Rule5Source is Rule 5 (§3.3, Figure 4): transpose any matrix using
// index edges.
const Rule5Source = `
rule Transpose {
  head New(Id) = Mat -#J> Y -#I> X -> A
  from Id = Mat -#I> X -#J> Y -> A
}
`

// WebProgramSource is the generic ODMG → HTML program (§4.1, rules
// Web1–Web6), implementing the O2Web translation: an object becomes a
// page, an atom a string, collections and tuples become HTML lists,
// and an object reference becomes an anchor. It is safe-recursive:
// the HtmlElement Skolem recurses on subtrees of the input.
const WebProgramSource = `
program odmg2html
` + ODMGModelSource + `
rule Web1 {
  head HtmlPage(Pclass) = html < -> head -> title -> Class_name,
                                 -> body < -> h1 -> Class_name,
                                           -> ul -*> li < -> L1, -> ^HtmlElement(P2) > > >
  from Pclass = class -> Class_name -*> Att -> P2 : Ptype
  let L1 = attr_label(Att)
}

rule Web2 {
  head HtmlElement(Pany) = S
  from Pany = Data
  let S = data_to_string(Data)
}

rule Web3 {
  head HtmlElement(Ptup) = ul -*> li -> ^HtmlElement(P2)
  from Ptup = tuple -*> Att -> P2 : Ptype
}

rule Web4 {
  head HtmlElement(Pcoll) = ul -*> li -> ^HtmlElement(P2)
  from Pcoll = X : (set|bag) -*> P2 : Ptype
}

rule Web5 {
  head HtmlElement(Pseq) = ol -*> li -> ^HtmlElement(P2)
  from Pseq = X : (list|array) -*> P2 : Ptype
}

rule Web6 {
  head HtmlElement(Pobj) = a < -> href -> &HtmlPage(Pobj), -> cont -> Class_name >
  from Pobj = class -> Class_name -*> Att -> P2 : Ptype
}
`

// AnnotatedSGMLToODMGSource is the §3.1 program with explicit string
// domains on the PCDATA variables. The annotations let the type
// checker prove the output ODMG-compliant (§3.5) and make the program
// composable with the Web program (§4.3).
const AnnotatedSGMLToODMGSource = `
program sgml2odmgTyped

rule Sup {
  head Psup(SN) = class -> supplier < -> name -> SN, -> city -> C, -> zip -> Z >
  from Pbr = brochure < -> number -> Num, -> title -> T : string,
                        -> model -> Year, -> desc -> D : string,
                        -> spplrs -*> supplier < -> name -> SN : string,
                                                 -> address -> Add > >
  where Year > 1975
  let C = city(Add)
  let Z = zip(Add)
}

rule Car {
  head Pcar(Pbr) = class -> car < -> name -> T, -> desc -> D,
                                   -> suppliers -> set -{}> &Psup(SN) >
  from Pbr = brochure < -> number -> Num, -> title -> T : string,
                        -> model -> Year, -> desc -> D : string,
                        -> spplrs -*> supplier < -> name -> SN : string,
                                                 -> address -> Add > >
}
`

// SGMLToODMGSource is the two-rule program of §3.1 (Rules 1 and 2),
// the running example converting SGML brochures to ODMG objects.
const SGMLToODMGSource = `
program sgml2odmg
` + Rule1Source + Rule2Source

// SGMLToODMGPrimeSource combines Rule 1' and Rule 2: the mutually
// referencing cars ↔ suppliers object graph.
const SGMLToODMGPrimeSource = `
program sgml2odmgPrime
` + Rule1PrimeSource + Rule2Source

// CyclicProgramSource is the program with both & symbols removed —
// must be rejected by the safety check (§3.4).
const CyclicProgramSource = `
program cyclic
` + CyclicSupSource + CyclicCarSource

// ExceptionRuleSource is the §3.5 exception rule: it matches any
// input and raises; appended at the bottom of a hierarchy it fires
// only when no other rule converted the input.
const ExceptionRuleSource = `
rule Exception {
  exception
  from Pany = Data
}
`
