package yatl

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the YATL parser. The parser must
// never panic: every input either yields a program or a *ParseError
// carrying a position inside the input. Seeds are the paper's fixture
// programs plus small inputs that exercise each syntactic corner
// (models, order constraints, typed leaves, collection edges).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		Rule1Source,
		Rule2Source,
		Rule1PrimeSource,
		Rule3Source,
		Rule4Source,
		Rule5Source,
		SGMLToODMGSource,
		AnnotatedSGMLToODMGSource,
		SGMLToODMGPrimeSource,
		WebProgramSource,
		CyclicProgramSource,
		ExceptionRuleSource,
		ODMGModelSource,
		"",
		"program p\n",
		"program p\nrule R { head P(X) = a -> X from B = b -> X }",
		"program p\nrule R { exception from B = T }",
		"program p\norder R before S\n",
		"program p\nmodel M { P = a -> X : string|int }",
		"program p\nrule R { head P(B) = list -[X]> set -{}> a -#I> X from B = b -> X }",
		"program p\nrule R { head P(B) = a -> ^Q(B) / &Q(B) from B = c < -> d -> E, -> f -*> G > }",
		"program p\nrule R { head P(X) = a -> X from B = b -> X : int where X > 1975 let Y = city(X) }",
		"rule R {",
		"program\n\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err == nil {
			if prog == nil {
				t.Fatal("Parse returned nil program and nil error")
			}
			// A successfully parsed program must survive cloning and
			// re-analysis of its rules (exercises the AST invariants
			// downstream passes rely on).
			for _, r := range prog.Rules {
				r.Clone()
			}
			return
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Fatalf("Parse error is %T, want *ParseError: %v", err, err)
		}
		if !strings.HasPrefix(pe.Error(), "yatl: ") {
			t.Fatalf("error message missing yatl prefix: %q", pe.Error())
		}
		if pe.Pos.IsValid() {
			lines := strings.Count(src, "\n") + 1
			if pe.Pos.Line < 1 || pe.Pos.Line > lines+1 {
				t.Fatalf("error position %s outside input (%d lines)", pe.Pos, lines)
			}
		}
	})
}
