package yatl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates the lexical tokens of the YATL concrete syntax.
type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tString
	tInt
	tFloat
	tArrowOne   // ->
	tArrowStar  // -*>
	tArrowGroup // -{}>
	tOrderOpen  // -[
	tIndexOpen  // -#
	tOrderClose // ]>
	tLAngle     // <
	tRAngle     // >
	tLParen     // (
	tRParen     // )
	tLBrace     // {
	tRBrace     // }
	tComma      // ,
	tColon      // :
	tEq         // =
	tPipe       // |
	tAmp        // &
	tCaret      // ^
	tEqEq       // ==
	tBangEq     // !=
	tLtEq       // <=
	tGtEq       // >=
)

func (k tokKind) String() string {
	names := map[tokKind]string{
		tEOF: "end of input", tIdent: "identifier", tString: "string",
		tInt: "integer", tFloat: "float", tArrowOne: "->", tArrowStar: "-*>",
		tArrowGroup: "-{}>", tOrderOpen: "-[", tIndexOpen: "-#",
		tOrderClose: "]>", tLAngle: "<", tRAngle: ">", tLParen: "(",
		tRParen: ")", tLBrace: "{", tRBrace: "}", tComma: ",", tColon: ":",
		tEq: "=", tPipe: "|", tAmp: "&", tCaret: "^", tEqEq: "==",
		tBangEq: "!=", tLtEq: "<=", tGtEq: ">=",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("tok(%d)", uint8(k))
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...interface{}) error {
	return &ParseError{Pos: Pos{Line: line, Col: col}, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance(w int) {
	for i := 0; i < w; i++ {
		if l.off < len(l.src) && l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		r, w := utf8.DecodeRuneInString(l.src[l.off:])
		switch {
		case unicode.IsSpace(r):
			l.advance(w)
		case strings.HasPrefix(l.src[l.off:], "//") || strings.HasPrefix(l.src[l.off:], "#"):
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance(1)
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if l.off >= len(l.src) {
		return mk(tEOF, ""), nil
	}
	rest := l.src[l.off:]
	r, w := utf8.DecodeRuneInString(rest)

	// Multi-character operators first.
	switch {
	case strings.HasPrefix(rest, "-{}>"):
		l.advance(4)
		return mk(tArrowGroup, "-{}>"), nil
	case strings.HasPrefix(rest, "-*>"):
		l.advance(3)
		return mk(tArrowStar, "-*>"), nil
	case strings.HasPrefix(rest, "->"):
		l.advance(2)
		return mk(tArrowOne, "->"), nil
	case strings.HasPrefix(rest, "-["):
		l.advance(2)
		return mk(tOrderOpen, "-["), nil
	case strings.HasPrefix(rest, "-#"):
		l.advance(2)
		return mk(tIndexOpen, "-#"), nil
	case strings.HasPrefix(rest, "]>"):
		l.advance(2)
		return mk(tOrderClose, "]>"), nil
	case strings.HasPrefix(rest, "=="):
		l.advance(2)
		return mk(tEqEq, "=="), nil
	case strings.HasPrefix(rest, "!="):
		l.advance(2)
		return mk(tBangEq, "!="), nil
	case strings.HasPrefix(rest, "<="):
		l.advance(2)
		return mk(tLtEq, "<="), nil
	case strings.HasPrefix(rest, ">="):
		l.advance(2)
		return mk(tGtEq, ">="), nil
	}

	switch r {
	case '<':
		l.advance(1)
		return mk(tLAngle, "<"), nil
	case '>':
		l.advance(1)
		return mk(tRAngle, ">"), nil
	case '(':
		l.advance(1)
		return mk(tLParen, "("), nil
	case ')':
		l.advance(1)
		return mk(tRParen, ")"), nil
	case '{':
		l.advance(1)
		return mk(tLBrace, "{"), nil
	case '}':
		l.advance(1)
		return mk(tRBrace, "}"), nil
	case ',':
		l.advance(1)
		return mk(tComma, ","), nil
	case ':':
		l.advance(1)
		return mk(tColon, ":"), nil
	case '=':
		l.advance(1)
		return mk(tEq, "="), nil
	case '|':
		l.advance(1)
		return mk(tPipe, "|"), nil
	case '&':
		l.advance(1)
		return mk(tAmp, "&"), nil
	case '^':
		l.advance(1)
		return mk(tCaret, "^"), nil
	case '"':
		start := l.off
		l.advance(1)
		for l.off < len(l.src) {
			c := l.src[l.off]
			if c == '\\' {
				l.advance(2)
				continue
			}
			if c == '"' {
				l.advance(1)
				return mk(tString, l.src[start:l.off]), nil
			}
			if c == '\n' {
				return token{}, l.errorf(line, col, "unterminated string literal")
			}
			l.advance(1)
		}
		return token{}, l.errorf(line, col, "unterminated string literal")
	}

	if r == '-' || unicode.IsDigit(r) {
		start := l.off
		l.advance(w)
		isFloat := false
		for l.off < len(l.src) {
			c := l.src[l.off]
			if c >= '0' && c <= '9' {
				l.advance(1)
				continue
			}
			if c == '.' || c == 'e' || c == 'E' {
				isFloat = true
				l.advance(1)
				if l.off < len(l.src) && (l.src[l.off] == '+' || l.src[l.off] == '-') {
					l.advance(1)
				}
				continue
			}
			break
		}
		text := l.src[start:l.off]
		if text == "-" {
			return token{}, l.errorf(line, col, "unexpected character %q", "-")
		}
		if isFloat {
			return mk(tFloat, text), nil
		}
		return mk(tInt, text), nil
	}

	if unicode.IsLetter(r) || r == '_' {
		start := l.off
		l.advance(w)
		for l.off < len(l.src) {
			r, w := utf8.DecodeRuneInString(l.src[l.off:])
			if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
				l.advance(w)
				continue
			}
			break
		}
		return mk(tIdent, l.src[start:l.off]), nil
	}

	return token{}, l.errorf(line, col, "unexpected character %q", string(r))
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tEOF {
			return out, nil
		}
	}
}
