package yatl

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"

	"yat/internal/pattern"
	"yat/internal/tree"
)

// Parse reads a full YATL program: an optional `program NAME` header
// followed by any number of `model`, `order` and `rule` blocks.
func Parse(src string) (*Program, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	prog := &Program{Name: "anonymous"}
	if p.atKeyword("program") {
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		prog.Name = name
	}
	for p.tok().kind != tEOF {
		switch {
		case p.atKeyword("model"):
			decl, err := p.parseModelDecl()
			if err != nil {
				return nil, err
			}
			prog.Models = append(prog.Models, decl)
		case p.atKeyword("rule"):
			r, err := p.parseRule()
			if err != nil {
				return nil, err
			}
			prog.Rules = append(prog.Rules, r)
		case p.atKeyword("order"):
			o, err := p.parseOrder()
			if err != nil {
				return nil, err
			}
			prog.Orders = append(prog.Orders, o)
		default:
			return nil, p.errorf("expected model, rule or order, found %q", p.tok().text)
		}
	}
	return prog, nil
}

// MustParse is Parse that panics on error; for fixtures and tests.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseRule reads a single `rule NAME { ... }` block.
func ParseRule(src string) (*Rule, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("rule") {
		return nil, p.errorf("expected rule, found %q", p.tok().text)
	}
	r, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if p.tok().kind != tEOF {
		return nil, p.errorf("trailing input after rule: %q", p.tok().text)
	}
	return r, nil
}

// MustParseRule is ParseRule that panics on error.
func MustParseRule(src string) *Rule {
	r, err := ParseRule(src)
	if err != nil {
		panic(err)
	}
	return r
}

// ParsePattern reads a single pattern tree.
func ParsePattern(src string) (*pattern.PTree, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	t, err := p.parsePTree()
	if err != nil {
		return nil, err
	}
	if p.tok().kind != tEOF {
		return nil, p.errorf("trailing input after pattern: %q", p.tok().text)
	}
	return t, nil
}

// MustParsePattern is ParsePattern that panics on error.
func MustParsePattern(src string) *pattern.PTree {
	t, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseModel reads a single `model NAME { ... }` block and returns
// its name and patterns.
func ParseModel(src string) (string, *pattern.Model, error) {
	p, err := newParser(src)
	if err != nil {
		return "", nil, err
	}
	if !p.atKeyword("model") {
		return "", nil, p.errorf("expected model, found %q", p.tok().text)
	}
	decl, err := p.parseModelDecl()
	if err != nil {
		return "", nil, err
	}
	if p.tok().kind != tEOF {
		return "", nil, p.errorf("trailing input after model: %q", p.tok().text)
	}
	return decl.Name, decl.Model, nil
}

// MustParseModel is ParseModel that panics on error.
func MustParseModel(src string) *pattern.Model {
	_, m, err := ParseModel(src)
	if err != nil {
		panic(err)
	}
	return m
}

// --- parser machinery ---------------------------------------------------

// ParseError is a YATL syntax error carrying the source position of
// the offending token, so tools (yatcheck, yatc) can point at the
// exact location instead of echoing only the token text.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error renders the error as "yatl: line:col: msg".
func (e *ParseError) Error() string {
	if !e.Pos.IsValid() {
		return "yatl: " + e.Msg
	}
	return fmt.Sprintf("yatl: %s: %s", e.Pos, e.Msg)
}

type parser struct {
	toks []token
	pos  int
}

func newParser(src string) (*parser, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) tok() token { return p.toks[p.pos] }

func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.at(), Msg: fmt.Sprintf(format, args...)}
}

// at returns the source position of the current token.
func (p *parser) at() Pos {
	t := p.tok()
	return Pos{Line: t.line, Col: t.col}
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok().kind != k {
		return token{}, p.errorf("expected %s, found %q", k, p.tok().text)
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (string, error) {
	t, err := p.expect(tIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok().kind == tIdent && p.tok().text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errorf("expected %q, found %q", kw, p.tok().text)
	}
	p.next()
	return nil
}

// isUpper reports whether the identifier denotes a variable (the
// paper's convention: variables start with an upper-case letter).
func isUpper(ident string) bool {
	r, _ := utf8.DecodeRuneInString(ident)
	return unicode.IsUpper(r)
}

var kindKeywords = map[string]tree.Kind{
	"string": tree.KindString,
	"int":    tree.KindInt,
	"float":  tree.KindFloat,
	"bool":   tree.KindBool,
	"symbol": tree.KindSymbol,
}

// --- grammar ------------------------------------------------------------

func (p *parser) parseOrder() (Order, error) {
	if err := p.expectKeyword("order"); err != nil {
		return Order{}, err
	}
	pos := p.at()
	before, err := p.expectIdent()
	if err != nil {
		return Order{}, err
	}
	if err := p.expectKeyword("before"); err != nil {
		return Order{}, err
	}
	after, err := p.expectIdent()
	if err != nil {
		return Order{}, err
	}
	return Order{Before: before, After: after, Pos: pos}, nil
}

func (p *parser) parseModelDecl() (*ModelDecl, error) {
	if err := p.expectKeyword("model"); err != nil {
		return nil, err
	}
	pos := p.at()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	m := pattern.NewModel()
	for p.tok().kind != tRBrace {
		patName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tEq); err != nil {
			return nil, err
		}
		var union []*pattern.PTree
		for {
			t, err := p.parsePTree()
			if err != nil {
				return nil, err
			}
			union = append(union, t)
			if p.tok().kind == tPipe {
				p.next()
				continue
			}
			break
		}
		m.Add(pattern.NewPattern(patName, union...))
	}
	p.next() // consume }
	return &ModelDecl{Name: name, Model: m, Pos: pos}, nil
}

func (p *parser) parseRule() (*Rule, error) {
	if err := p.expectKeyword("rule"); err != nil {
		return nil, err
	}
	rulePos := p.at()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrace); err != nil {
		return nil, err
	}
	r := &Rule{Name: name, Pos: rulePos}
	sawHead := false
	for p.tok().kind != tRBrace {
		switch {
		case p.atKeyword("head"):
			if sawHead {
				return nil, p.errorf("rule %s has more than one head", name)
			}
			sawHead = true
			p.next()
			headPos := p.at()
			functor, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			var args []pattern.Arg
			if p.tok().kind == tLParen {
				args, err = p.parseArgs()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(tEq); err != nil {
				return nil, err
			}
			t, err := p.parsePTree()
			if err != nil {
				return nil, err
			}
			r.Head = Head{Functor: functor, Args: args, Tree: t, Pos: headPos}
		case p.atKeyword("exception"):
			if sawHead {
				return nil, p.errorf("rule %s has both head and exception", name)
			}
			sawHead = true
			p.next()
			r.Exception = true
		case p.atKeyword("from"):
			p.next()
			fromPos := p.at()
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			bp := BodyPattern{Var: v, Pos: fromPos}
			if p.tok().kind == tColon {
				p.next()
				dom, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				bp.Domain = dom
			}
			if _, err := p.expect(tEq); err != nil {
				return nil, err
			}
			t, err := p.parsePTree()
			if err != nil {
				return nil, err
			}
			bp.Tree = t
			r.Body = append(r.Body, bp)
		case p.atKeyword("where"):
			p.next()
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			r.Preds = append(r.Preds, pred)
		case p.atKeyword("let"):
			p.next()
			letPos := p.at()
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tEq); err != nil {
				return nil, err
			}
			fn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ops, err := p.parseOperands()
			if err != nil {
				return nil, err
			}
			r.Lets = append(r.Lets, Let{Var: v, Func: fn, Args: ops, Pos: letPos})
		default:
			return nil, p.errorf("expected head, exception, from, where or let; found %q", p.tok().text)
		}
	}
	p.next() // consume }
	if !sawHead {
		return nil, &ParseError{Pos: rulePos, Msg: fmt.Sprintf("rule %s has no head", name)}
	}
	if len(r.Body) == 0 {
		return nil, &ParseError{Pos: rulePos, Msg: fmt.Sprintf("rule %s has no body pattern", name)}
	}
	return r, nil
}

func (p *parser) parsePred() (Pred, error) {
	pos := p.at()
	// Call form: ident '(' ... ')'.
	if p.tok().kind == tIdent && p.peek().kind == tLParen && !isUpper(p.tok().text) {
		fn := p.next().text
		ops, err := p.parseOperands()
		if err != nil {
			return Pred{}, err
		}
		return Pred{Call: fn, Args: ops, Pos: pos}, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return Pred{}, err
	}
	var op CmpOp
	switch p.tok().kind {
	case tEqEq:
		op = OpEq
	case tBangEq:
		op = OpNe
	case tLAngle:
		op = OpLt
	case tLtEq:
		op = OpLe
	case tRAngle:
		op = OpGt
	case tGtEq:
		op = OpGe
	default:
		return Pred{}, p.errorf("expected comparison operator, found %q", p.tok().text)
	}
	p.next()
	right, err := p.parseOperand()
	if err != nil {
		return Pred{}, err
	}
	return Pred{Left: left, Op: op, Right: right, Pos: pos}, nil
}

func (p *parser) parseOperands() ([]Operand, error) {
	if _, err := p.expect(tLParen); err != nil {
		return nil, err
	}
	var out []Operand
	if p.tok().kind != tRParen {
		for {
			o, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			out = append(out, o)
			if p.tok().kind == tComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tRParen); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseOperand() (Operand, error) {
	switch p.tok().kind {
	case tIdent:
		text := p.next().text
		switch text {
		case "true":
			return ConstOperand(tree.Bool(true)), nil
		case "false":
			return ConstOperand(tree.Bool(false)), nil
		}
		if isUpper(text) {
			return VarOperand(text), nil
		}
		return ConstOperand(tree.Symbol(text)), nil
	case tString:
		s, err := strconv.Unquote(p.tok().text)
		if err != nil {
			return Operand{}, p.errorf("bad string literal %s", p.tok().text)
		}
		p.next()
		return ConstOperand(tree.String(s)), nil
	case tInt:
		i, err := strconv.ParseInt(p.tok().text, 10, 64)
		if err != nil {
			return Operand{}, p.errorf("bad integer %s", p.tok().text)
		}
		p.next()
		return ConstOperand(tree.Int(i)), nil
	case tFloat:
		f, err := strconv.ParseFloat(p.tok().text, 64)
		if err != nil {
			return Operand{}, p.errorf("bad float %s", p.tok().text)
		}
		p.next()
		return ConstOperand(tree.Float(f)), nil
	default:
		return Operand{}, p.errorf("expected operand, found %q", p.tok().text)
	}
}

func (p *parser) parseArgs() ([]pattern.Arg, error) {
	ops, err := p.parseOperands()
	if err != nil {
		return nil, err
	}
	args := make([]pattern.Arg, len(ops))
	for i, o := range ops {
		if o.IsVar {
			args[i] = pattern.VarArg(o.Var)
		} else {
			args[i] = pattern.ConstArg(o.Const)
		}
	}
	return args, nil
}

// parsePTree parses a pattern tree: a label followed by either an
// arrow chain (single edge) or a bracketed edge list.
func (p *parser) parsePTree() (*pattern.PTree, error) {
	node, err := p.parseLabelNode()
	if err != nil {
		return nil, err
	}
	switch p.tok().kind {
	case tLAngle:
		p.next()
		for {
			e, err := p.parseEdge()
			if err != nil {
				return nil, err
			}
			node.Edges = append(node.Edges, e)
			if p.tok().kind == tComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tRAngle); err != nil {
			return nil, err
		}
	case tArrowOne, tArrowStar, tArrowGroup, tOrderOpen, tIndexOpen:
		e, err := p.parseEdge()
		if err != nil {
			return nil, err
		}
		node.Edges = append(node.Edges, e)
	}
	return node, nil
}

func (p *parser) parseEdge() (pattern.Edge, error) {
	pos := p.at()
	e, err := p.parseEdgeArrow()
	if err != nil {
		return e, err
	}
	e.Pos = pos
	return e, nil
}

func (p *parser) parseEdgeArrow() (pattern.Edge, error) {
	switch p.tok().kind {
	case tArrowOne:
		p.next()
		t, err := p.parsePTree()
		if err != nil {
			return pattern.Edge{}, err
		}
		return pattern.One(t), nil
	case tArrowStar:
		p.next()
		t, err := p.parsePTree()
		if err != nil {
			return pattern.Edge{}, err
		}
		return pattern.Star(t), nil
	case tArrowGroup:
		p.next()
		t, err := p.parsePTree()
		if err != nil {
			return pattern.Edge{}, err
		}
		return pattern.Group(t), nil
	case tOrderOpen:
		p.next()
		var crit []string
		for {
			v, err := p.expectIdent()
			if err != nil {
				return pattern.Edge{}, err
			}
			crit = append(crit, v)
			if p.tok().kind == tComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tOrderClose); err != nil {
			return pattern.Edge{}, err
		}
		t, err := p.parsePTree()
		if err != nil {
			return pattern.Edge{}, err
		}
		return pattern.Ordered(t, crit...), nil
	case tIndexOpen:
		p.next()
		v, err := p.expectIdent()
		if err != nil {
			return pattern.Edge{}, err
		}
		if _, err := p.expect(tRAngle); err != nil {
			return pattern.Edge{}, err
		}
		t, err := p.parsePTree()
		if err != nil {
			return pattern.Edge{}, err
		}
		return pattern.Index(v, t), nil
	default:
		return pattern.Edge{}, p.errorf("expected edge arrow, found %q", p.tok().text)
	}
}

func (p *parser) parseLabelNode() (*pattern.PTree, error) {
	pos := p.at()
	node, err := p.parseLabelNodeAt()
	if err != nil {
		return nil, err
	}
	node.Pos = pos
	return node, nil
}

func (p *parser) parseLabelNodeAt() (*pattern.PTree, error) {
	switch p.tok().kind {
	case tCaret, tAmp:
		isRef := p.tok().kind == tAmp
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var args []pattern.Arg
		if p.tok().kind == tLParen {
			args, err = p.parseArgs()
			if err != nil {
				return nil, err
			}
		}
		return pattern.NewPatRef(name, isRef, args...), nil
	case tString:
		s, err := strconv.Unquote(p.tok().text)
		if err != nil {
			return nil, p.errorf("bad string literal %s", p.tok().text)
		}
		p.next()
		return pattern.NewConst(tree.String(s)), nil
	case tInt:
		i, err := strconv.ParseInt(p.tok().text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %s", p.tok().text)
		}
		p.next()
		return pattern.NewConst(tree.Int(i)), nil
	case tFloat:
		f, err := strconv.ParseFloat(p.tok().text, 64)
		if err != nil {
			return nil, p.errorf("bad float %s", p.tok().text)
		}
		p.next()
		return pattern.NewConst(tree.Float(f)), nil
	case tIdent:
		text := p.next().text
		switch text {
		case "true":
			return pattern.NewConst(tree.Bool(true)), nil
		case "false":
			return pattern.NewConst(tree.Bool(false)), nil
		}
		if !isUpper(text) {
			return pattern.NewSym(text), nil
		}
		v := pattern.Var{Name: text, Domain: pattern.AnyDomain}
		if p.tok().kind == tColon {
			p.next()
			dom, err := p.parseDomain()
			if err != nil {
				return nil, err
			}
			v.Domain = dom
		}
		return &pattern.PTree{Label: v}, nil
	default:
		return nil, p.errorf("expected pattern label, found %q", p.tok().text)
	}
}

// parseDomain parses a variable domain: a union of kind keywords
// (string|int|float|bool|symbol), a parenthesized symbol set
// ((set|bag)), a pattern name (upper-case identifier), a reference
// domain (&P), or `any`.
func (p *parser) parseDomain() (pattern.Domain, error) {
	if p.tok().kind == tAmp {
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return pattern.Domain{}, err
		}
		return pattern.RefDomain(name), nil
	}
	if p.tok().kind == tLParen {
		p.next()
		var syms []string
		for {
			s, err := p.expectIdent()
			if err != nil {
				return pattern.Domain{}, err
			}
			syms = append(syms, s)
			if p.tok().kind == tPipe {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tRParen); err != nil {
			return pattern.Domain{}, err
		}
		return pattern.SymbolDomain(syms...), nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return pattern.Domain{}, err
	}
	if name == "any" {
		return pattern.AnyDomain, nil
	}
	if isUpper(name) {
		return pattern.PatternDomain(name), nil
	}
	kind, ok := kindKeywords[name]
	if !ok {
		return pattern.Domain{}, p.errorf("unknown domain %q", name)
	}
	kinds := []tree.Kind{kind}
	// Consume further `| kind` parts only when the token after the
	// pipe is a kind keyword; otherwise the pipe belongs to a pattern
	// union at an outer level.
	for p.tok().kind == tPipe && p.peek().kind == tIdent {
		if _, isKind := kindKeywords[p.peek().text]; !isKind {
			break
		}
		p.next()
		k := kindKeywords[p.next().text]
		kinds = append(kinds, k)
	}
	return pattern.KindDomain(kinds...), nil
}
