package yatl

import (
	"math/rand"
	"strings"
	"testing"

	"yat/internal/pattern"
)

// Fuzz-style robustness: random mutations of valid sources must never
// panic the lexer or parser — they either parse or return an error.
func TestParserRobustUnderMutation(t *testing.T) {
	sources := []string{
		WebProgramSource,
		SGMLToODMGSource,
		Rule3Source,
		Rule5Source,
		ODMGModelSource,
	}
	r := rand.New(rand.NewSource(99))
	mutants := 0
	parsed := 0
	for _, src := range sources {
		for trial := 0; trial < 200; trial++ {
			m := mutate(r, src)
			mutants++
			func() {
				defer func() {
					if rec := recover(); rec != nil {
						t.Fatalf("parser panicked on mutant: %v\n%s", rec, m)
					}
				}()
				if _, err := Parse(m); err == nil {
					parsed++
				}
			}()
		}
	}
	t.Logf("%d mutants, %d still parsed", mutants, parsed)
}

// mutate applies one random edit: delete a span, duplicate a span, or
// splice in a random token.
func mutate(r *rand.Rand, src string) string {
	if len(src) < 4 {
		return src
	}
	tokens := []string{"<", ">", "(", ")", "{", "}", "->", "-*>", "-{}>",
		"-[", "]>", "-#", "&", "^", "|", ":", "=", ",", "rule", "head",
		"from", "where", "let", "model", `"unterminated`, "1975", "X"}
	switch r.Intn(3) {
	case 0: // delete
		i := r.Intn(len(src) - 2)
		j := i + 1 + r.Intn(min(20, len(src)-i-1))
		return src[:i] + src[j:]
	case 1: // duplicate
		i := r.Intn(len(src) - 2)
		j := i + 1 + r.Intn(min(20, len(src)-i-1))
		return src[:j] + src[i:j] + src[j:]
	default: // splice
		i := r.Intn(len(src))
		return src[:i] + " " + tokens[r.Intn(len(tokens))] + " " + src[i:]
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Printed forms of randomly mutated-but-still-valid programs reparse
// to the same printed form (printer/parser are mutual inverses on the
// valid subset).
func TestPrintParseFixpointOnMutants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	base := MustParse(WebProgramSource)
	for trial := 0; trial < 100; trial++ {
		m := mutate(r, base.String())
		p1, err := Parse(m)
		if err != nil {
			continue
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("printed form of a valid program failed to reparse: %v\n%s", err, p1.String())
		}
		if p1.String() != p2.String() {
			t.Fatalf("print ∘ parse not a fixpoint:\n%s\nvs\n%s", p1.String(), p2.String())
		}
	}
}

func TestParseModelErrors(t *testing.T) {
	bad := []string{
		`model M {`,
		`model { }`,
		`model M { P }`,
		`model M { P = }`,
		`rule R { head F = a from X = b }`, // not a model
		`model M { P = a } trailing`,
	}
	for _, src := range bad {
		if _, _, err := ParseModel(src); err == nil {
			t.Errorf("ParseModel(%q) should fail", src)
		}
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := []string{
		`program`,
		`bogus topLevel`,
		`program p rule`,
		`program p order A`,
		`program p order A before`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestKeywordsAsSymbolsInsideTrees(t *testing.T) {
	// Clause keywords are ordinary symbols inside pattern trees (the
	// brochure DTD has a `model` element; HTML has `head`).
	r := MustParseRule(`rule R {
	  head F(X) = html < -> head -> T, -> model -> M >
	  from X = doc < -> head -> T, -> model -> M, -> rule -> R2, -> from -> F2 >
	}`)
	s := r.Body[0].Tree.String()
	for _, frag := range []string{"head ->", "model ->", "rule ->", "from ->"} {
		if !strings.Contains(s, frag) {
			t.Errorf("keyword-as-symbol lost: %q in %s", frag, s)
		}
	}
}

func TestExceptionRulePrintsAndReparses(t *testing.T) {
	r := MustParseRule(ExceptionRuleSource)
	r2, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("exception rule reparse: %v\n%s", err, r.String())
	}
	if !r2.Exception {
		t.Error("exception flag lost in round trip")
	}
}

func TestRefDomainSyntax(t *testing.T) {
	pt := MustParsePattern(`set -*> X : &Psup`)
	v := pt.Edges[0].To.Label.(pattern.Var)
	if !v.Domain.IsRefPattern() || v.Domain.Pattern != "Psup" {
		t.Errorf("ref domain not parsed: %+v", v.Domain)
	}
	// Round trip through the printer.
	again := MustParsePattern(pt.String())
	if again.String() != pt.String() {
		t.Errorf("ref domain round trip: %s vs %s", pt, again)
	}
}
