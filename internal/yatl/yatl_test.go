package yatl

import (
	"strings"
	"testing"

	"yat/internal/pattern"
	"yat/internal/tree"
)

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`rule R { head P(X) = a -*> b -{}> c -[SN,I]> d -#J> e }`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{
		tIdent, tIdent, tLBrace, tIdent, tIdent, tLParen, tIdent, tRParen,
		tEq, tIdent, tArrowStar, tIdent, tArrowGroup, tIdent, tOrderOpen,
		tIdent, tComma, tIdent, tOrderClose, tIdent, tIndexOpen, tIdent,
		tRAngle, tIdent, tRBrace, tEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := lexAll("a // line comment\n# hash comment\nb")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].text != "a" || toks[1].text != "b" {
		t.Errorf("comments not skipped: %v", toks)
	}
}

func TestLexerNumbersAndStrings(t *testing.T) {
	toks, err := lexAll(`-5 3.25 1e3 "text \" quote" 1975`)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []tokKind{tInt, tFloat, tFloat, tString, tInt, tEOF}
	for i, k := range wantKinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v (%q)", i, toks[i].kind, k, toks[i].text)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "\"newline\n\"", "@", "a - b"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) should fail", src)
		}
	}
}

func TestLexerLineCol(t *testing.T) {
	toks, err := lexAll("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("token position = %d:%d, want 2:3", toks[1].line, toks[1].col)
	}
}

func TestParsePatternBasics(t *testing.T) {
	pt := MustParsePattern(`class -> supplier < -> name -> SN, -> city -> C >`)
	if pt.Label.(pattern.Const).Value.Display() != "class" {
		t.Error("root label wrong")
	}
	sup := pt.Edges[0].To
	if len(sup.Edges) != 2 {
		t.Fatalf("supplier edges = %d", len(sup.Edges))
	}
	name := sup.Edges[0].To
	snVar := name.Edges[0].To.Label.(pattern.Var)
	if snVar.Name != "SN" || !snVar.Domain.IsAny() {
		t.Errorf("SN var wrong: %+v", snVar)
	}
}

func TestParsePatternArrowsAndRefs(t *testing.T) {
	pt := MustParsePattern(`set < -*> &Psup(SN), -{}> ^Pcar(Pbr), -[SN,C]> X, -#I> Y >`)
	if len(pt.Edges) != 4 {
		t.Fatalf("edges = %d", len(pt.Edges))
	}
	if pt.Edges[0].Occ != pattern.OccStar {
		t.Error("edge 0 should be star")
	}
	ref := pt.Edges[0].To.Label.(pattern.PatRef)
	if !ref.Ref || ref.Name != "Psup" || len(ref.Args) != 1 || ref.Args[0].Var != "SN" {
		t.Errorf("ref wrong: %+v", ref)
	}
	deref := pt.Edges[1].To.Label.(pattern.PatRef)
	if deref.Ref || deref.Name != "Pcar" {
		t.Errorf("deref wrong: %+v", deref)
	}
	if pt.Edges[2].Occ != pattern.OccOrdered || len(pt.Edges[2].OrderBy) != 2 {
		t.Errorf("ordered edge wrong: %+v", pt.Edges[2])
	}
	if pt.Edges[3].Occ != pattern.OccIndex || pt.Edges[3].Index != "I" {
		t.Errorf("index edge wrong: %+v", pt.Edges[3])
	}
}

func TestParsePatternDomains(t *testing.T) {
	pt := MustParsePattern(`t < -> A : string|int, -> B : (set|bag), -> C : Ptype, -> D : any >`)
	a := pt.Edges[0].To.Label.(pattern.Var)
	if !a.Domain.Contains(tree.String("x")) || !a.Domain.Contains(tree.Int(1)) || a.Domain.Contains(tree.Float(1)) {
		t.Errorf("kind union domain wrong: %v", a.Domain)
	}
	b := pt.Edges[1].To.Label.(pattern.Var)
	if !b.Domain.Contains(tree.Symbol("set")) || b.Domain.Contains(tree.Symbol("list")) {
		t.Errorf("symbol domain wrong: %v", b.Domain)
	}
	c := pt.Edges[2].To.Label.(pattern.Var)
	if c.Domain.Pattern != "Ptype" {
		t.Errorf("pattern domain wrong: %v", c.Domain)
	}
	d := pt.Edges[3].To.Label.(pattern.Var)
	if !d.Domain.IsAny() {
		t.Errorf("any domain wrong: %v", d.Domain)
	}
}

func TestParsePatternLiterals(t *testing.T) {
	pt := MustParsePattern(`t < -> "str", -> 42, -> -3.5, -> true, -> false >`)
	want := []tree.Value{tree.String("str"), tree.Int(42), tree.Float(-3.5), tree.Bool(true), tree.Bool(false)}
	for i, w := range want {
		got := pt.Edges[i].To.Label.(pattern.Const).Value
		if !got.Equal(w) {
			t.Errorf("literal %d = %v, want %v", i, got, w)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	bad := []string{
		``,
		`a <`,
		`a < -> b`,
		`a < b >`,       // missing arrow
		`a -> `,         // missing target
		`^`,             // missing name
		`a -[]> b`,      // empty criteria
		`a -#> b`,       // missing index var
		`X : wrong`,     // unknown domain keyword
		`a -> b -> c d`, // trailing
	}
	for _, src := range bad {
		if _, err := ParsePattern(src); err == nil {
			t.Errorf("ParsePattern(%q) should fail", src)
		}
	}
}

func TestParseRule1(t *testing.T) {
	r, err := ParseRule(Rule1Source)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "Sup" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Head.Functor != "Psup" || len(r.Head.Args) != 1 || r.Head.Args[0].Var != "SN" {
		t.Errorf("head = %+v", r.Head)
	}
	if len(r.Body) != 1 || r.Body[0].Var != "Pbr" {
		t.Errorf("body = %+v", r.Body)
	}
	if len(r.Preds) != 1 || r.Preds[0].Op != OpGt {
		t.Errorf("preds = %+v", r.Preds)
	}
	if len(r.Lets) != 2 || r.Lets[0].Func != "city" || r.Lets[1].Func != "zip" {
		t.Errorf("lets = %+v", r.Lets)
	}
}

func TestParseRule3MultiBody(t *testing.T) {
	r, err := ParseRule(Rule3Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Body) != 3 {
		t.Fatalf("body patterns = %d, want 3", len(r.Body))
	}
	names := []string{r.Body[0].Var, r.Body[1].Var, r.Body[2].Var}
	if names[0] != "Pbr" || names[1] != "Rsuppliers" || names[2] != "Rcars" {
		t.Errorf("body vars = %v", names)
	}
	if len(r.Preds) != 1 || !r.Preds[0].IsCall() || r.Preds[0].Call != "sameaddress" {
		t.Errorf("preds = %+v", r.Preds)
	}
}

func TestParseExceptionRule(t *testing.T) {
	r, err := ParseRule(ExceptionRuleSource)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exception || r.Head.Tree != nil {
		t.Errorf("exception rule wrong: %+v", r)
	}
}

func TestParseWebProgram(t *testing.T) {
	prog, err := Parse(WebProgramSource)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "odmg2html" {
		t.Errorf("name = %q", prog.Name)
	}
	if len(prog.Rules) != 6 {
		t.Fatalf("rules = %d, want 6", len(prog.Rules))
	}
	if len(prog.Models) != 1 || prog.Models[0].Name != "ODMG" {
		t.Fatalf("models = %+v", prog.Models)
	}
	odmg := prog.Models[0].Model
	ptype, ok := odmg.Get("Ptype")
	if !ok {
		t.Fatal("Ptype missing from model")
	}
	if len(ptype.Union) != 7 {
		t.Errorf("Ptype union branches = %d, want 7", len(ptype.Union))
	}
	if err := odmg.Validate(); err != nil {
		t.Errorf("parsed ODMG model invalid: %v", err)
	}
	// The parsed model must be an instance of Yat and accept the Car
	// Schema, like the hand-built fixture.
	if err := pattern.InstanceOf(odmg, pattern.YatModel()); err != nil {
		t.Errorf("parsed ODMG not a Yat instance: %v", err)
	}
	if err := pattern.InstanceOf(pattern.CarSchemaModel(), odmg); err != nil {
		t.Errorf("CarSchema not an instance of parsed ODMG: %v", err)
	}
	funcs := prog.Functors()
	if len(funcs) != 2 || funcs[0] != "HtmlPage" || funcs[1] != "HtmlElement" {
		t.Errorf("functors = %v", funcs)
	}
}

func TestParseAllFixtureSources(t *testing.T) {
	for name, src := range map[string]string{
		"SGMLToODMG":      SGMLToODMGSource,
		"SGMLToODMGPrime": SGMLToODMGPrimeSource,
		"Cyclic":          CyclicProgramSource,
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for name, src := range map[string]string{
		"Rule1": Rule1Source, "Rule2": Rule2Source, "Rule1Prime": Rule1PrimeSource,
		"Rule3": Rule3Source, "Rule4": Rule4Source, "Rule5": Rule5Source,
	} {
		if _, err := ParseRule(strings.TrimSpace(src)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseOrderStatement(t *testing.T) {
	prog, err := Parse(`
program p
order WebCar before Web1
` + Rule1Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Orders) != 1 || prog.Orders[0].Before != "WebCar" || prog.Orders[0].After != "Web1" {
		t.Errorf("orders = %+v", prog.Orders)
	}
}

func TestRuleStringRoundTrip(t *testing.T) {
	for _, src := range []string{Rule1Source, Rule2Source, Rule1PrimeSource, Rule3Source, Rule4Source, Rule5Source} {
		r1, err := ParseRule(strings.TrimSpace(src))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ParseRule(r1.String())
		if err != nil {
			t.Fatalf("reparse of printed rule failed: %v\n%s", err, r1.String())
		}
		if r1.String() != r2.String() {
			t.Errorf("round trip not stable:\n%s\nvs\n%s", r1.String(), r2.String())
		}
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	for _, src := range []string{WebProgramSource, SGMLToODMGSource, CyclicProgramSource} {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := Parse(p1.String())
		if err != nil {
			t.Fatalf("reparse of printed program failed: %v\n%s", err, p1.String())
		}
		if p1.String() != p2.String() {
			t.Errorf("round trip not stable for %s", p1.Name)
		}
	}
}

func TestRuleVars(t *testing.T) {
	r := MustParseRule(strings.TrimSpace(Rule1Source))
	vars := r.Vars()
	want := map[string]bool{"SN": true, "C": true, "Z": true, "Pbr": true,
		"Num": true, "T": true, "Year": true, "D": true, "Add": true}
	if len(vars) != len(want) {
		t.Errorf("Vars = %v, want %d distinct", vars, len(want))
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %q", v)
		}
	}
}

func TestRuleRenameVars(t *testing.T) {
	r := MustParseRule(strings.TrimSpace(Rule1Source))
	ren := r.RenameVars(map[string]string{"SN": "SN1", "Add": "Add1", "C": "C1"})
	// Original untouched.
	if !strings.Contains(r.String(), "Psup(SN)") {
		t.Error("original rule mutated")
	}
	s := ren.String()
	for _, frag := range []string{"Psup(SN1)", "city(Add1)", "let C1 =", "-> name -> SN1"} {
		if !strings.Contains(s, frag) {
			t.Errorf("renamed rule missing %q:\n%s", frag, s)
		}
	}
	if strings.Contains(strings.ReplaceAll(s, "SN1", ""), "SN") {
		t.Errorf("unrenamed SN left behind:\n%s", s)
	}
}

func TestRuleRenameVarsCriteriaAndIndex(t *testing.T) {
	r := MustParseRule(strings.TrimSpace(Rule5Source))
	ren := r.RenameVars(map[string]string{"I": "I9", "J": "J9"})
	s := ren.String()
	if !strings.Contains(s, "-#J9>") || !strings.Contains(s, "-#I9>") {
		t.Errorf("index vars not renamed:\n%s", s)
	}
	r4 := MustParseRule(strings.TrimSpace(Rule4Source))
	ren4 := r4.RenameVars(map[string]string{"SN": "S0"})
	if !strings.Contains(ren4.String(), "-[S0]>") {
		t.Errorf("criteria vars not renamed:\n%s", ren4.String())
	}
}

func TestRuleCloneIndependence(t *testing.T) {
	r := MustParseRule(strings.TrimSpace(Rule1Source))
	c := r.Clone()
	c.Head.Tree.Label = pattern.Var{Name: "Zap"}
	c.Preds[0].Op = OpLt
	c.Lets[0].Var = "Other"
	if r.Head.Tree.Label.(pattern.Const).Value.Display() != "class" {
		t.Error("clone shares head tree")
	}
	if r.Preds[0].Op != OpGt {
		t.Error("clone shares preds")
	}
	if r.Lets[0].Var != "C" {
		t.Error("clone shares lets")
	}
}

func TestProgramAccessors(t *testing.T) {
	prog := MustParse(WebProgramSource)
	if _, ok := prog.Rule("Web4"); !ok {
		t.Error("Rule(Web4) not found")
	}
	if _, ok := prog.Rule("Nope"); ok {
		t.Error("Rule(Nope) found")
	}
	if _, ok := prog.Model("ODMG"); !ok {
		t.Error("Model(ODMG) not found")
	}
	clone := prog.Clone()
	clone.Rules[0].Name = "Changed"
	if prog.Rules[0].Name == "Changed" {
		t.Error("Clone shares rules")
	}
}

func TestParseRuleErrors(t *testing.T) {
	bad := []string{
		`rule R { }`,            // no head
		`rule R { head P = a }`, // no body
		`rule R { head P = a head Q = b from X = c }`, // two heads
		`rule R { exception head P = a from X = c }`,  // exception + head
		`rule R { head P = a from X = b where X ~ 1 }`,
		`rule R { head P = a from X = b bogus }`,
		`rule { head P = a from X = b }`, // missing name
	}
	for _, src := range bad {
		if _, err := ParseRule(src); err == nil {
			t.Errorf("ParseRule(%q) should fail", src)
		}
	}
}

func TestPredString(t *testing.T) {
	p := Pred{Left: VarOperand("Year"), Op: OpGt, Right: ConstOperand(tree.Int(1975))}
	if p.String() != "Year > 1975" {
		t.Errorf("pred String = %q", p.String())
	}
	c := Pred{Call: "sameaddress", Args: []Operand{VarOperand("A"), VarOperand("B")}}
	if c.String() != "sameaddress(A, B)" {
		t.Errorf("call String = %q", c.String())
	}
}
