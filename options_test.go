package yat

import (
	"context"
	"errors"
	"strings"
	"testing"

	"yat/internal/tree"
	"yat/internal/workload"
	"yat/internal/yatl"
)

// The functional options and the legacy *RunOptions literal are two
// spellings of the same configuration: identical outputs, and nil
// still means defaults.
func TestFunctionalOptionsEquivalent(t *testing.T) {
	prog, err := ParseProgram(Rules1And2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.BrochureStore(6, 2, 4, 42)
	legacy, err := Run(prog, inputs, &RunOptions{Registry: NewRegistry(), Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	functional, err := Run(prog, inputs, WithRegistry(NewRegistry()), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if FormatStore(functional.Outputs) != FormatStore(legacy.Outputs) {
		t.Error("functional options changed the run's outputs")
	}
	bare, err := Run(prog, inputs)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := Run(prog, inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if FormatStore(bare.Outputs) != FormatStore(viaNil.Outputs) ||
		FormatStore(bare.Outputs) != FormatStore(legacy.Outputs) {
		t.Error("default configurations disagree")
	}
}

func TestRunContextCancellation(t *testing.T) {
	prog, err := ParseProgram(Rules1And2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = RunContext(ctx, prog, workload.BrochureStore(10, 2, 5, 42))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
	// A live context runs normally, and RunContext overrides a context
	// smuggled through the deprecated options field.
	res, err := RunContext(context.Background(), prog, workload.BrochureStore(4, 2, 3, 42),
		&RunOptions{Context: ctx, Parallelism: 2})
	if err != nil || res.Outputs.Len() == 0 {
		t.Errorf("live RunContext failed: %v", err)
	}
}

// The typed errors are errors.As-able through the facade.
func TestTypedErrors(t *testing.T) {
	if _, err := ParseProgram("program p\nrule {"); err == nil {
		t.Fatal("bad program accepted")
	} else {
		var pe *ParseError
		if !errors.As(err, &pe) || !pe.Pos.IsValid() {
			t.Errorf("parse failure not a positioned *ParseError: %v", err)
		}
	}

	cyclic, err := ParseProgram(yatl.CyclicProgramSource)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cyclic, NewStore()); err == nil {
		t.Fatal("cyclic program accepted")
	} else {
		var se *SafetyError
		if !errors.As(err, &se) || len(se.Violations) == 0 {
			t.Errorf("safety failure not a *SafetyError: %v", err)
		}
	}

	unconv, err := ParseProgram(`
program p
rule R {
  head Pout(X) = out
  from X = in
}
rule E {
  exception
  from Pany = Data
}
`)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.Put(tree.PlainName("o1"), tree.Sym("other"))
	if _, err := Run(unconv, store); err == nil {
		t.Fatal("exception rule did not fire")
	} else {
		var ue *ErrUnconverted
		if !errors.As(err, &ue) || len(ue.IDs) != 1 {
			t.Errorf("exception failure not an *ErrUnconverted: %v", err)
		}
	}
}

// End-to-end through the facade: a demand-driven mediator built from
// functional options answers like a full one and honors context.
func TestFacadeDemandMediator(t *testing.T) {
	prog, err := ParseProgram(Rules1And2)
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.BrochureStore(6, 2, 4, 9)
	full := NewMediator(prog, inputs)
	demand := NewMediator(prog, inputs, WithParallelism(4), WithDemandDriven(true))
	want, err := full.Ask(`class -> supplier -*> X`, "Psup")
	if err != nil {
		t.Fatal(err)
	}
	got, err := demand.AskContext(context.Background(), `class -> supplier -*> X`, "Psup")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("demand mediator found %d answers, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Name.Equal(want[i].Name) || got[i].Binding.Key() != want[i].Binding.Key() {
			t.Fatalf("answer %d differs", i)
		}
	}
	if s := demand.Stats(); !s.Demand || s.CachedRules == 0 {
		t.Errorf("demand stats: %+v", s)
	}
	// Slicing is reachable from the facade too.
	sl := ComputeSlice(prog, "Psup")
	res, err := RunSlice(context.Background(), prog, inputs, sl)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RuleOutputs["Sup"]) == 0 {
		t.Error("facade RunSlice produced no Sup outputs")
	}
}

// A mediator-only option passed to a plain engine run would otherwise
// be silently ignored; the run must surface the misconfiguration as a
// warning instead.
func TestMediatorOnlyOptionWarns(t *testing.T) {
	prog := yatl.MustParse(Rules1And2)
	inputs := workload.BrochureStore(2, 1, 2, 1)
	res, err := Run(prog, inputs, WithDemandDriven(true), WithSources(StaticSource("s", NewStore())))
	if err != nil {
		t.Fatal(err)
	}
	foundDemand, foundSources := false, false
	for _, w := range res.Warnings {
		if strings.Contains(w, "WithDemandDriven") {
			foundDemand = true
		}
		if strings.Contains(w, "WithSources") {
			foundSources = true
		}
	}
	if !foundDemand || !foundSources {
		t.Errorf("warnings = %q, want mentions of WithDemandDriven and WithSources", res.Warnings)
	}
	// The same options through NewMediator warn about nothing: they
	// are consumed before the engine sees them.
	med := NewMediator(prog, inputs, WithDemandDriven(true))
	if _, err := med.Ask(`X`, "Psup"); err != nil {
		t.Fatal(err)
	}
	if s := med.Stats(); !s.Demand {
		t.Errorf("mediator did not consume WithDemandDriven: %+v", s)
	}
}

// The facade end of the fault-tolerant source layer: decorate, attach,
// degrade, inspect.
func TestFacadeFaultTolerantSources(t *testing.T) {
	prog := yatl.MustParse(Rules1And2)
	healthyStore := workload.BrochureStore(3, 1, 2, 9)
	clock := NewFakeSourceClock()
	fault := NewFaultSource("brochures", healthyStore,
		FaultStep{Fail: errors.New("cold start")},
	).WithClock(clock)
	src := SourceWithCache(
		SourceWithBreaker(
			SourceWithRetry(fault, RetryOptions{MaxAttempts: 3, Clock: clock}),
			BreakerOptions{Clock: clock}),
		CacheOptions{Clock: clock})
	med := NewMediator(prog, nil, WithSources(src))
	got, err := med.Ask(`class -> supplier -*> Y`, "Psup")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no answers through the decorated source")
	}
	st := med.Stats()
	if len(st.Sources) != 1 {
		t.Fatalf("Sources = %+v", st.Sources)
	}
	s := st.Sources[0]
	if s.Name != "brochures" || s.Retries != 1 || s.FetchErr != "" || s.Entries == 0 {
		t.Errorf("source status = %+v, want 1 absorbed retry and a healthy fetch", s)
	}
	if stats := SourceStatsOf(src); stats.Attempts != 2 {
		t.Errorf("SourceStatsOf = %+v, want 2 attempts", stats)
	}
	src.Wait()
}
