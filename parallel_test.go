package yat

// Golden comparison for the parallel engine: every workload of the
// benchmark suite must produce byte-identical results at every
// parallelism level. This is the acceptance gate for the worker-pool
// execution — parallelism is an implementation detail the output must
// not reveal.

import (
	"fmt"
	"strings"
	"testing"

	"yat/internal/workload"
	"yat/internal/yatl"
)

// fingerprint renders everything observable about a run.
func fingerprint(res *Result) string {
	var sb strings.Builder
	sb.WriteString(FormatStore(res.Outputs))
	sb.WriteString("\n--warnings--\n")
	for _, w := range res.Warnings {
		sb.WriteString(w)
		sb.WriteByte('\n')
	}
	sb.WriteString("--unconverted--\n")
	for _, id := range res.Unconverted {
		sb.WriteString(id.Display())
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "--stats--\n%+v\n", res.Stats)
	return sb.String()
}

func rule3Store(n int, seed uint64) *Store {
	pool := workload.Suppliers(n/2+2, seed)
	brochures := workload.Brochures(n, 2, pool, seed)
	db := workload.DealerDatabase(brochures, pool, seed)
	store := NewStore()
	for i, br := range brochures {
		store.Put(PlainName(fmt.Sprintf("b%d", i+1)), br.Tree())
	}
	for _, e := range ImportRelational(db).Entries() {
		store.Put(e.Name, e.Tree)
	}
	return store
}

func matrixStore(n int) *Store {
	s := NewStore()
	s.Put(PlainName("m"), workload.MatrixTree(n, n))
	return s
}

// warningStore yields n inputs for the warny program: odd entries
// carry a parseable address, even ones a malformed one that makes
// city() error and drop the binding with a warning.
func warningStore(n int) *Store {
	var sb strings.Builder
	for i := 1; i <= n; i++ {
		if i%2 == 0 {
			fmt.Fprintf(&sb, "i%d: in -> \"address without locality %d\"\n", i, i)
		} else {
			fmt.Fprintf(&sb, "i%d: in -> \"%d Bd Lenoir, 75%03d Paris\"\n", i, i, i)
		}
	}
	s, err := ParseStore(sb.String())
	if err != nil {
		panic(err)
	}
	return s
}

func TestParallelByteIdenticalOnWorkloads(t *testing.T) {
	composed := func(t *testing.T) *Program {
		first, err := ParseProgram(Rules1And2Typed)
		if err != nil {
			t.Fatal(err)
		}
		second, err := ParseProgram(WebRules)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ComposePrograms(first, second, nil)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name         string
		src          string // YATL source; empty means prog is built below
		prog         func(t *testing.T) *Program
		inputs       *Store
		wantWarnings bool // the case must actually exercise Warnings
	}{
		{name: "brochures/rules1and2", src: Rules1And2,
			inputs: workload.BrochureStore(40, 3, 12, 42)},
		{name: "brochures/typed", src: Rules1And2Typed,
			inputs: workload.BrochureStore(25, 4, 8, 7)},
		{name: "brochures/rule4-grouping", src: "program p\n" + yatl.Rule4Source,
			inputs: workload.BrochureStore(30, 6, 15, 3)},
		{name: "cardealer/rule3-join", src: "program p\n" + yatl.Rule3Source,
			inputs: rule3Store(24, 7)},
		{name: "web/odmg-to-html", src: WebRules,
			inputs: workload.ODMGStore(20, 11, 3, 11)},
		{name: "matrix/transpose", src: TransposeRule,
			inputs: matrixStore(16)},
		{name: "brochures/composed", prog: composed,
			inputs: workload.BrochureStore(15, 3, 9, 5)},
		// Warning-heavy case: half the inputs make city() fail (binding
		// dropped with a warning), and every output holds a reference
		// to a Skolem no rule defines (dangling-reference warnings).
		// This pins the *order* of Result.Warnings across widths — the
		// other workloads barely warn at all.
		{name: "warnings/dropped-and-dangling", src: `
program warny
rule R {
  head Pout(X) = out < -> city -> C, -> link -> &Pmissing(X) >
  from X = in -> A
  let C = city(A)
}
`,
			inputs: warningStore(16), wantWarnings: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var prog *Program
			if tc.prog != nil {
				prog = tc.prog(t)
			} else {
				p, err := ParseProgram(tc.src)
				if err != nil {
					t.Fatal(err)
				}
				prog = p
			}
			seq, err := Run(prog, tc.inputs, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantWarnings && len(seq.Warnings) < 2 {
				t.Fatalf("case meant to pin warning order produced %d warnings", len(seq.Warnings))
			}
			want := fingerprint(seq)
			for _, par := range []int{2, 4, -1} {
				res, err := Run(prog, tc.inputs, &RunOptions{Parallelism: par})
				if err != nil {
					t.Fatalf("parallelism=%d: %v", par, err)
				}
				if got := fingerprint(res); got != want {
					t.Errorf("parallelism=%d output diverges from sequential", par)
				}
			}
		})
	}
}

// TestParallelPipelineByteIdentical chains the Figure 1 two-step
// conversion (SGML→ODMG→HTML) with both engines and compares the
// exported HTML byte for byte.
func TestParallelPipelineByteIdentical(t *testing.T) {
	first, err := ParseProgram(Rules1And2)
	if err != nil {
		t.Fatal(err)
	}
	web, err := ParseProgram(WebRules)
	if err != nil {
		t.Fatal(err)
	}
	inputs := workload.BrochureStore(12, 3, 6, 42)
	render := func(opts *RunOptions) map[string]string {
		mid, err := Run(first, inputs, opts)
		if err != nil {
			t.Fatal(err)
		}
		interm := NewStore()
		for _, e := range mid.Outputs.Entries() {
			interm.Put(e.Name, e.Tree)
		}
		res, err := Run(web, interm, opts)
		if err != nil {
			t.Fatal(err)
		}
		pages, err := ExportHTML(res.Outputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return pages
	}
	want := render(nil)
	got := render(&RunOptions{Parallelism: 4})
	if len(got) != len(want) {
		t.Fatalf("page count: got %d, want %d", len(got), len(want))
	}
	for name, html := range want {
		if got[name] != html {
			t.Errorf("page %s differs between sequential and parallel runs", name)
		}
	}
}
