// Package yat is a Go implementation of the YAT system for data
// conversion ("Your Mediators Need Data Conversion!", Cluet, Delobel,
// Siméon, Smaga — SIGMOD 1998).
//
// YAT converts data between heterogeneous representations — SGML
// documents, relational tables, ODMG objects, HTML pages — through a
// middleware model of named ordered labeled trees and a declarative
// rule language, YATL. Conversion programs can be type checked
// (signature inference plus the model-instantiation relation),
// customized (specialized onto a specific pattern and then edited),
// combined (rule hierarchies with most-specific-first dispatch) and
// composed (two programs fused into one that skips the intermediate
// model).
//
// This package is a thin facade over the implementation packages:
//
//	internal/tree       ground trees, names, stores
//	internal/pattern    patterns, models, instantiation
//	internal/yatl       the YATL language (parser, printer, fixtures)
//	internal/engine     the rule interpreter
//	internal/typing     signature inference and type checks
//	internal/compose    instantiation, combination, composition
//	internal/relational in-memory relational database
//	internal/sgml       DTD and document parsing, validation
//	internal/odmg       ODMG schemas and object store
//	internal/wrapper    import/export wrappers
//	internal/library    program/model library
//	internal/mediator   querying the virtual target (mediator side)
//	internal/workload   synthetic benchmark data
//
// Quick start:
//
//	prog, _ := yat.ParseProgram(yat.Rules1And2)
//	inputs, _ := yat.ImportSGML(map[string]string{"b1": doc}, nil)
//	result, _ := yat.Run(prog, inputs, yat.WithParallelism(8))
//	fmt.Print(yat.FormatStore(result.Outputs))
//
// Demand-driven querying:
//
//	med := yat.NewMediator(prog, inputs, yat.WithDemandDriven(true))
//	answers, _ := med.Ask("class -> supplier < -> name -> N, -> city -> C, -> zip -> Z >", "Psup")
package yat

import (
	"context"

	"yat/internal/analysis"
	"yat/internal/compose"
	"yat/internal/engine"
	"yat/internal/federate"
	"yat/internal/library"
	"yat/internal/mediator"
	"yat/internal/pattern"
	"yat/internal/snapshot"
	"yat/internal/source"
	"yat/internal/trace"
	"yat/internal/tree"
	"yat/internal/typing"
	"yat/internal/wrapper"
	"yat/internal/yatl"
)

// Core data types.
type (
	// Node is one vertex of a ground YAT tree.
	Node = tree.Node
	// Name identifies a tree in a Store (plain or Skolem-minted).
	Name = tree.Name
	// Store holds named ground trees.
	Store = tree.Store
	// Value is a node label.
	Value = tree.Value
	// Ref is a reference label naming another tree (&name).
	Ref = tree.Ref

	// Pattern is a named union of pattern trees.
	Pattern = pattern.Pattern
	// Model is a set of patterns — one level of representation.
	Model = pattern.Model

	// Program is a YATL conversion program.
	Program = yatl.Program
	// Rule is one YATL rule.
	Rule = yatl.Rule

	// RunOptions configures program execution. Prefer building
	// configurations from the With* options; a *RunOptions literal
	// still works anywhere an Option is accepted.
	RunOptions = engine.Options
	// Option is one functional configuration item for Run, RunContext,
	// RunSlice and NewMediator.
	Option = engine.Option
	// Result is the outcome of a run.
	Result = engine.Result
	// Registry holds external functions and predicates.
	Registry = engine.Registry

	// Signature is a program's inferred input/output models.
	Signature = typing.Signature

	// Library stores named programs and models.
	Library = library.Library
)

// Tree and store construction/parsing.
var (
	// NewStore returns an empty store.
	NewStore = tree.NewStore
	// ParseTree parses one ground tree in concrete syntax.
	ParseTree = tree.Parse
	// ParseStore parses `name: tree` entries.
	ParseStore = tree.ParseStore
	// FormatStore renders a store parseably.
	FormatStore = tree.FormatStore
	// PlainName builds a simple name; SkolemName a minted identity.
	PlainName  = tree.PlainName
	SkolemName = tree.SkolemName
)

// Language entry points.
var (
	// ParseProgram parses a YATL program.
	ParseProgram = yatl.Parse
	// ParseRule parses a single rule block.
	ParseRule = yatl.ParseRule
	// ParsePattern parses a pattern tree.
	ParsePattern = yatl.ParsePattern
	// ParseModel parses a `model NAME { ... }` block.
	ParseModel = yatl.ParseModel
)

// The paper's programs, in YATL source form.
const (
	// Rules1And2 is the §3.1 SGML → ODMG program (Rules 1 and 2).
	Rules1And2 = yatl.SGMLToODMGSource
	// Rules1And2Typed is the same program with annotated PCDATA
	// variables (type-checkable and composable).
	Rules1And2Typed = yatl.AnnotatedSGMLToODMGSource
	// Rules1Prime2 is Rule 1' + Rule 2 (mutually referencing objects).
	Rules1Prime2 = yatl.SGMLToODMGPrimeSource
	// WebRules is the generic ODMG → HTML program (Web1–Web6).
	WebRules = yatl.WebProgramSource
	// TransposeRule is Rule 5 (Figure 4), the matrix transpose.
	TransposeRule = "program transpose\n" + yatl.Rule5Source
)

// Functional options for Run, RunContext, RunSlice and NewMediator.
// Later options win; nil options and `Run(prog, inputs, nil)` apply
// the defaults.
var (
	// WithRegistry supplies the external function/predicate registry.
	WithRegistry = engine.WithRegistry
	// WithModel merges an extra model environment into domain checks.
	WithModel = engine.WithModel
	// WithParallelism sets the worker count (results are byte-identical
	// at every setting).
	WithParallelism = engine.WithParallelism
	// WithTrace attaches a trace sink (nil disables at zero cost).
	WithTrace = engine.WithTrace
	// WithMaxRounds bounds the activation fixpoint.
	WithMaxRounds = engine.WithMaxRounds
	// WithNonDetWarn downgrades run-time non-determinism to a warning.
	WithNonDetWarn = engine.WithNonDetWarn
	// WithCheckOutputs enables the run-time output type checker.
	WithCheckOutputs = engine.WithCheckOutputs
	// WithDisableSafety skips the §3.4 static cycle check.
	WithDisableSafety = engine.WithDisableSafety
	// WithFacts supplies precomputed program facts (AnalyzeProgram):
	// the run then dispatches through the head-symbol index. Output
	// stays byte-identical to an unoptimized run.
	WithFacts = engine.WithFacts
	// WithOptimize(true) computes facts at run start (one-shot
	// convenience); WithOptimize(false) disables every fact-driven
	// optimization — the debugging escape hatch.
	WithOptimize = engine.WithOptimize
	// WithDemandDriven switches NewMediator to demand-driven
	// evaluation: queries materialize only the rule slices they need,
	// memoized per rule with fine-grained invalidation.
	WithDemandDriven = mediator.WithDemandDriven
)

// Run executes a program over an input store.
func Run(prog *Program, inputs *Store, opts ...Option) (*Result, error) {
	return engine.Run(prog, inputs, opts...)
}

// RunContext is Run under a cancellation context: the run aborts with
// the context's error at the next phase boundary after expiry.
func RunContext(ctx context.Context, prog *Program, inputs *Store, opts ...Option) (*Result, error) {
	return engine.RunContext(ctx, prog, inputs, opts...)
}

// Demand-driven evaluation (the engine half of mediator query
// pushdown): a Slice is the dependency-closed set of rules needed to
// materialize some Skolem functors, and RunSlice executes only that
// slice with full-run fidelity.
type (
	// Slice is a dependency-closed rule slice (engine.ComputeSlice).
	Slice = engine.Slice
	// SliceResult is the outcome of a slice-restricted run, with
	// per-rule outputs and per-rule matched sources.
	SliceResult = engine.SliceResult
	// ProgramFacts is the optimizer's precomputed view of a program:
	// interned symbols, head-symbol dispatch index, dead and
	// unreachable rules, dependency strata, memoized slices.
	ProgramFacts = engine.ProgramFacts
)

// AnalyzeProgram computes the optimizer facts for a program once;
// pass the result to runs via WithFacts.
var AnalyzeProgram = engine.AnalyzeProgram

var (
	// ComputeSlice computes the rule slice for a set of functors.
	ComputeSlice = engine.ComputeSlice
	// RunSlice executes a slice; its construct rules' outputs are
	// byte-identical to a full run's at every Parallelism setting.
	RunSlice = engine.RunSlice
)

// Typed errors, matchable with errors.As across the facade:
//
//	var se *yat.SafetyError
//	if errors.As(err, &se) { ... se.Violations ... }
type (
	// ErrUnconverted reports §3.5 exception-rule failures: source
	// inputs no rule converted.
	ErrUnconverted = engine.ErrUnconverted
	// SafetyError reports §3.4 safety violations (dereferenced Skolem
	// cycles that are not safe-recursive).
	SafetyError = engine.SafetyError
	// NonDetError reports run-time non-determinism (one identity, two
	// distinct values) when NonDetWarn is off.
	NonDetError = engine.NonDetError
	// FixpointError reports an activation fixpoint that did not
	// converge within MaxRounds.
	FixpointError = engine.FixpointError
	// ParseError is a positioned YATL syntax error.
	ParseError = yatl.ParseError
)

// NewRegistry returns the built-in external functions (city, zip,
// sameaddress, data_to_string, ...); register more with
// Registry.Register.
func NewRegistry() *Registry { return engine.NewRegistry() }

// CheckSafety runs the §3.4 static cycle analysis.
func CheckSafety(prog *Program) error { return engine.CheckSafety(prog) }

// Static analysis (the yatcheck framework).
type (
	// Diagnostic is one positioned static-analysis finding.
	Diagnostic = analysis.Diagnostic
	// Severity grades a diagnostic (info, warning, error).
	Severity = analysis.Severity
)

// The diagnostic severities.
const (
	SeverityInfo    = analysis.SeverityInfo
	SeverityWarning = analysis.SeverityWarning
	SeverityError   = analysis.SeverityError
)

// Analyze runs the full static-analysis suite (range restriction,
// unused variables, rule names, Skolem arities, undefined references,
// predicate sanity, collection primitives, exception reachability,
// §3.4 safety, §3.5 typing and coverage) over a program and returns
// the diagnostics sorted by source position.
func Analyze(prog *Program) ([]Diagnostic, error) {
	return analysis.Run(prog, analysis.DefaultAnalyzers(), nil)
}

// Typing.
var (
	// Infer computes a program's signature M_IN ↦ M_OUT.
	Infer = typing.Infer
	// CheckOutput verifies the inferred output model against a more
	// general model; CheckInput does the same for the input side.
	CheckOutput = typing.CheckOutput
	CheckInput  = typing.CheckInput
	// Compatible checks that two programs can compose (§4.3).
	Compatible = typing.Compatible
)

// Models and instantiation.
var (
	// InstanceOf checks the model instantiation relation (§2).
	InstanceOf = pattern.InstanceOf
	// Conforms validates one ground tree against a model pattern.
	Conforms = pattern.Conforms
	// YatModel, ODMGModel, CarSchemaModel and BrochureModel are the
	// Figure 2 fixtures.
	YatModel       = pattern.YatModel
	ODMGModel      = pattern.ODMGModel
	CarSchemaModel = pattern.CarSchemaModel
	BrochureModel  = pattern.BrochureModel
)

// InstantiateOptions configures program instantiation/composition.
type InstantiateOptions = compose.Options

// ComposeOptions configures composition. The struct form is legacy:
// it doubles as a ComposeOption that replaces the configuration
// wholesale, so pre-variadic call sites — including a literal nil —
// still compile and behave.
type ComposeOptions = compose.ComposeOptions

// ComposeOption is one functional configuration item for
// ComposePrograms, in the same style as the Run/NewMediator options.
type ComposeOption = compose.ComposeOption

var (
	// WithSkipTypeCheck bypasses the §4.3 compatibility check.
	WithSkipTypeCheck = compose.WithSkipTypeCheck
	// WithComposeRegistry supplies the function registry used for
	// constant folding during composition.
	WithComposeRegistry = compose.WithRegistry
	// WithComposeModel merges extra pattern definitions into the
	// composition's model context.
	WithComposeModel = compose.WithModel
)

// Instantiate specializes a general program onto a pattern (§4.1).
func Instantiate(prog *Program, input *Pattern, opts *InstantiateOptions) (*Program, error) {
	return compose.Instantiate(prog, input, opts)
}

// Combine merges programs into one rule hierarchy (§4.2).
func Combine(name string, progs ...*Program) *Program {
	return compose.Combine(name, progs...)
}

// ComposePrograms fuses prg1 : M1 ↦ M2 and prg2 : M2' ↦ M3 into a
// one-step M1 ↦ M3 program (§4.3). Options are variadic: pass
// WithSkipTypeCheck and friends, or a legacy *ComposeOptions struct
// (including nil) which is itself an option.
func ComposePrograms(prg1, prg2 *Program, opts ...ComposeOption) (*Program, error) {
	return compose.Compose(prg1, prg2, opts...)
}

// Wrappers (Figure 6's runtime environment).
type (
	// SGMLOptions configures SGML import.
	SGMLOptions = wrapper.SGMLOptions
	// HTMLOptions configures HTML export.
	HTMLOptions = wrapper.HTMLOptions
)

var (
	// ImportSGML parses and imports SGML documents.
	ImportSGML = wrapper.ImportSGML
	// ImportRelational exposes a relational database as YAT trees.
	ImportRelational = wrapper.ImportRelational
	// ExportODMG / ImportODMG move object databases in and out.
	ExportODMG = wrapper.ExportODMG
	ImportODMG = wrapper.ImportODMG
	// ExportHTML renders page objects as HTML documents.
	ExportHTML = wrapper.ExportHTML
	// DTDModel derives the YAT model of a DTD.
	DTDModel = wrapper.DTDModel
)

// BuiltinLibrary returns the program/format library preloaded with
// the paper's programs and models.
func BuiltinLibrary() *Library { return library.Builtin() }

// Mediator answers pattern queries over the virtual target of a
// conversion — the mediator-side querying the paper sketches as the
// system's purpose (lazy, memoized materialization).
type Mediator = mediator.Mediator

// MediatorAnswer is one query result.
type MediatorAnswer = mediator.Answer

// MediatorStats reports materialization state, cache hit/miss counts
// and cumulative Ask latency for a mediator.
type MediatorStats = mediator.Stats

// NewMediator wraps a program and its sources for querying. Pass
// WithDemandDriven(true) for per-query slice evaluation with per-rule
// caching; other options configure the underlying engine runs.
func NewMediator(prog *Program, inputs *Store, opts ...Option) *Mediator {
	return mediator.New(prog, inputs, opts...)
}

// MediatorSourceStatus is one source's health as reported by
// Mediator.Stats: the chain's own counters plus the outcome of the
// mediator's most recent fetch of it.
type MediatorSourceStatus = mediator.SourceStatus

// SourceFetchError is the all-sources-failed error: the mediator
// degrades through any partial failure, so only every source failing
// at once aborts a materialization.
type SourceFetchError = mediator.FetchError

// MediatorNotFoundError is returned by RefreshSource and
// InvalidateSource when the named source (or source entry) does not
// exist; Kind says which namespace the lookup missed.
type MediatorNotFoundError = mediator.NotFoundError

// Asker is the narrow query interface every mediator-shaped thing
// satisfies: a *Mediator, a Federation router, a remote shard client.
// Code written against Asker — the serve pool, the tools, another
// federation — does not care which it holds.
type Asker = mediator.Asker

// Durable warm starts (the internal/snapshot layer): a versioned,
// checksummed on-disk store for one mediator generation — the
// materialized demand store, the per-rule cache, the ask memo —
// keyed by canonical program+options hashes so a restored process
// answers byte-identically to a cold one or not at all.
//
//	snap, _ := med.Snapshot()
//	yat.WriteSnapshot("warm/yat.snapshot.json", snap)
//	// ... later, in a new process over the same program and options:
//	snap, _ = yat.ReadSnapshot("warm/yat.snapshot.json")
//	if err := med.Restore(snap); err != nil { /* cold boot */ }
type (
	// MediatorSnapshot is one persistable mediator generation.
	MediatorSnapshot = snapshot.Snapshot
	// SnapshotLoadError is the typed fallback-to-cold error; its Reason
	// says which invariant (checksum, version, program hash, ...) fired.
	SnapshotLoadError = snapshot.LoadError
	// SnapshotReason classifies a SnapshotLoadError.
	SnapshotReason = snapshot.Reason
)

var (
	// WriteSnapshot persists a snapshot atomically (temp file + rename).
	WriteSnapshot = snapshot.Write
	// ReadSnapshot loads and integrity-checks a snapshot file.
	ReadSnapshot = snapshot.Read
)

// Federated mediation (the internal/federate layer): a parent
// mediator over child mediators — the Mask-Mediator-Wrapper pattern.
// A Federation shards the virtual target across children by functor
// group and serves Asks by scatter-gather with a deterministic merge;
// its answers are byte-identical to a single mediator over the
// unsharded program. Child calls run under the source layer's
// retry/breaker/timeout decorators, so a dead child degrades an Ask
// to partial results instead of failing it.
//
//	fed, _ := yat.NewFederation(yat.FederationConfig{
//	    Programs: []*yat.Program{prog},
//	    Shards:   4,
//	    Inputs:   inputs,
//	})
//	answers, _ := fed.Ask("...", "Psup")
type (
	// Federation is the parent router; it implements Asker.
	Federation = federate.Federation
	// FederationConfig assembles a Federation: a program pipeline to
	// shard, or explicit Children (in-process or remote).
	FederationConfig = federate.Config
	// FederationChild is one explicitly configured member.
	FederationChild = federate.Child
	// FederationGuardOptions tunes the per-child retry/breaker/timeout.
	FederationGuardOptions = federate.GuardOptions
	// ShardPlan is one child's share of a sharded program.
	ShardPlan = federate.ShardPlan
	// ShardClient is an Asker over a remote yatserve instance.
	ShardClient = federate.Client
	// ShardClientOptions tunes NewShardClient.
	ShardClientOptions = federate.ClientOptions
	// MediatorShardStatus is one child's health row in a federation's
	// Stats.
	MediatorShardStatus = mediator.ShardStatus

	// UnroutableFunctorError reports an Ask for a functor no shard
	// owns; matchable with errors.As across the facade.
	UnroutableFunctorError = federate.UnroutableError
	// FederationFanoutError is the every-shard-failed error — the
	// federation degrades through partial failure, so only total
	// failure aborts an Ask.
	FederationFanoutError = federate.FanoutError
	// ShardRemoteError is a non-2xx answer from a remote shard, with
	// the wire protocol's stable error code.
	ShardRemoteError = federate.RemoteError
)

// NewFederation builds a federated mediator from cfg.
func NewFederation(cfg FederationConfig) (*Federation, error) {
	return federate.New(cfg)
}

var (
	// NewShardClient dials a remote yatserve child.
	NewShardClient = federate.NewClient
	// PlanShardsFor splits a program across n children by functor
	// group (round-robin, declaration order) — the plan NewFederation
	// uses, exposed for launching children as separate processes.
	PlanShardsFor = federate.PlanShards
)

// Fault-tolerant sources (the internal/source layer). A Source feeds a
// mediator live input trees; decorators compose resilience around it,
// conventionally cache(breaker(retry(timeout(src)))):
//
//	src := yat.SourceWithCache(
//	    yat.SourceWithBreaker(
//	        yat.SourceWithRetry(
//	            yat.SourceWithTimeout(api, 2*time.Second),
//	            yat.RetryOptions{}),
//	        yat.BreakerOptions{}),
//	    yat.CacheOptions{})
//	med := yat.NewMediator(prog, nil, yat.WithSources(src))
type (
	// Source produces an input snapshot on demand; the mediator
	// fetches every source concurrently and merges deterministically.
	Source = source.Source
	// SourceStats is a source chain's counters (attempts, retries,
	// breaker state, staleness); read with SourceStatsOf or through
	// Mediator.Stats().Sources.
	SourceStats = source.Stats
	// RetryOptions tunes SourceWithRetry (attempts, exponential
	// backoff, jitter; zero values mean the defaults).
	RetryOptions = source.RetryOptions
	// BreakerOptions tunes SourceWithBreaker (consecutive-failure
	// threshold, cooldown before the half-open probe).
	BreakerOptions = source.BreakerOptions
	// CacheOptions tunes SourceWithCache (snapshot TTL); expired
	// snapshots serve stale while one background refresh runs.
	CacheOptions = source.CacheOptions
	// CachedSource is the stale-while-revalidate decorator's concrete
	// type, exposing Refresh/Invalidate/Wait.
	CachedSource = source.Cached
	// SourceBreakerOpenError is returned while a breaker rejects
	// fetches without touching its source.
	SourceBreakerOpenError = source.ErrBreakerOpen
	// FaultStep scripts one fetch of a fault-injection source.
	FaultStep = source.Step
	// FaultSource is the scriptable fault-injection source for tests,
	// soaks and demos.
	FaultSource = source.Fault
	// SourceClock abstracts time for the source decorators; inject a
	// FakeSourceClock to test retry/breaker schedules without sleeping.
	SourceClock = source.Clock
	// FakeSourceClock is a deterministic manual clock.
	FakeSourceClock = source.FakeClock
)

var (
	// WithSources attaches fault-tolerant sources to NewMediator; the
	// constructor store merges first, then each source in declaration
	// order (later sources win name collisions). A failing source
	// degrades to a partial materialization; only all sources failing
	// is an error.
	WithSources = mediator.WithSources
	// StaticSource serves a fixed store; FuncSource adapts a closure.
	StaticSource = source.Static
	FuncSource   = source.FromFunc
	// SourceWithTimeout bounds each fetch; SourceWithRetry retries
	// with exponential backoff and jitter; SourceWithBreaker trips a
	// circuit breaker on consecutive failures; SourceWithCache serves
	// stale snapshots while revalidating in the background.
	SourceWithTimeout = source.WithTimeout
	SourceWithRetry   = source.WithRetry
	SourceWithBreaker = source.WithBreaker
	SourceWithCache   = source.WithCache
	// NewFaultSource scripts a fault-injection source.
	NewFaultSource = source.NewFault
	// NewFakeSourceClock returns a manual clock for deterministic
	// retry/breaker tests.
	NewFakeSourceClock = source.NewFakeClock
	// SourceStatsOf reads a source chain's merged counters.
	SourceStatsOf = source.StatsOf
)

// Observability (the internal/trace layer). Attach a sink through
// RunOptions.Trace; a nil sink costs nothing.
type (
	// TraceSink consumes typed engine events; implementations must be
	// safe for concurrent use when Parallelism > 1.
	TraceSink = trace.Sink
	// TraceEvent is one observation from the engine's run loop.
	TraceEvent = trace.Event
	// TraceProfile aggregates events into a per-rule/per-phase
	// EXPLAIN table (counts deterministic at every Parallelism).
	TraceProfile = trace.Profile
	// TraceRecorder retains every event in arrival order.
	TraceRecorder = trace.Recorder
)

// NewTraceProfile returns an empty profile ready to attach to a run:
//
//	p := yat.NewTraceProfile()
//	res, err := yat.Run(prog, inputs, &yat.RunOptions{Trace: p})
//	fmt.Print(p.Text(true)) // EXPLAIN table with wall times
var NewTraceProfile = trace.NewProfile

// TraceMulti fans one event stream out to several sinks (nil sinks
// are skipped), e.g. a Profile for the table plus a Recorder for the
// raw events.
var TraceMulti = trace.Multi
